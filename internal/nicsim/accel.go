package nicsim

import "repro/internal/sim"

// accelUser is one workload's demand on an accelerator at the current
// solver iterate. Open-loop users (offered > 0) arrive Poisson; closed-
// loop users (run-to-completion NFs) keep population requests cycling
// with thinkSec of packet processing between completion and re-arrival.
type accelUser struct {
	offered    float64 // requests/s offered (open-loop)
	closed     bool
	population int     // outstanding requests (one per core)
	thinkSec   float64 // per-request processing time outside the accelerator
	bytes      float64 // bytes per request
	matches    float64 // matches per request
	queues     int
}

// accelResult is the per-user outcome of one accelerator simulation.
type accelResult struct {
	completionRate float64 // requests/s served
	offeredRate    float64 // requests/s admitted to the queues
	meanSojourn    float64 // queueing + service, seconds
	meanService    float64 // service only, seconds
}

// saturated reports whether the engine could not keep up with the
// offered load (the queue stage was binding).
func (r accelResult) saturated() bool {
	return r.offeredRate > 0 && r.completionRate < 0.95*r.offeredRate
}

// maxBacklog bounds per-queue occupancy so overloaded runs stay cheap;
// arrivals beyond it are dropped (they would never be served within the
// window anyway).
const maxBacklog = 4096

// simulateAccel runs a discrete-event simulation of one accelerator:
// a single engine serving per-user FIFO request queues in round-robin
// order — the arbitration the BlueField-2 regex driver documents and that
// Eq. (1) of the paper is derived from. Service times are jittered, so
// the analytic model remains an approximation of this ground truth.
//
// Arrivals are Poisson at each user's offered rate, spread across its
// queues uniformly. The returned rates exclude a warmup prefix.
func simulateAccel(cfg AccelConfig, users []accelUser, rng *sim.RNG, minEvents int) []accelResult {
	n := len(users)
	results := make([]accelResult, n)

	serviceOf := func(u accelUser) float64 {
		return cfg.BaseSec + u.bytes*cfg.PerByteSec + u.matches*cfg.PerMatchSec
	}

	// Window sized to produce at least minEvents arrivals, estimating
	// closed-loop users at their cycle rate.
	var totalRate float64
	for _, u := range users {
		if u.closed && u.population > 0 {
			totalRate += float64(u.population) / (u.thinkSec + serviceOf(u) + 1e-12)
		} else {
			totalRate += u.offered
		}
	}
	if totalRate <= 0 {
		return results
	}

	// Fast path: with a single active user there is no cross-queue
	// contention, and the expected rates have closed forms (the DES's
	// uncontended limit). This dominates profiling runs, where the
	// target is the only accelerator user.
	activeUsers := 0
	only := -1
	for i, u := range users {
		if u.queues > 0 && (u.offered > 0 || (u.closed && u.population > 0)) {
			activeUsers++
			only = i
		}
	}
	if activeUsers == 1 {
		u := users[only]
		s := serviceOf(u)
		r := &results[only]
		r.meanService = s
		if u.closed {
			cycle := u.thinkSec + s
			rate := float64(u.population) / cycle
			if cap := 1 / s; rate > cap {
				rate = cap
			}
			r.completionRate = rate
			r.offeredRate = rate
			// Residual sibling overlap: a request arriving while another
			// is in service waits for its remainder.
			busy := rate * s
			r.meanSojourn = s + busy*s/2
		} else {
			rho := u.offered * s
			if rho >= 1 {
				r.completionRate = 1 / s
				r.meanSojourn = s * 20 // deeply backlogged
			} else {
				r.completionRate = u.offered
				r.meanSojourn = s / (1 - rho)
			}
			r.offeredRate = u.offered
		}
		return results
	}

	duration := float64(minEvents) / totalRate
	warmup := duration * 0.1

	active := func(u accelUser) bool {
		if u.queues <= 0 {
			return false
		}
		return u.offered > 0 || (u.closed && u.population > 0)
	}

	// Flatten queues: queue q belongs to owner[q].
	type fifo struct {
		times []float64 // arrival timestamps, FIFO
		head  int
	}
	var owner []int
	for i, u := range users {
		if !active(u) {
			continue
		}
		for q := 0; q < u.queues; q++ {
			owner = append(owner, i)
		}
	}
	if len(owner) == 0 {
		return results
	}
	queues := make([]fifo, len(owner))
	// Per-user queue index lists for arrival spreading.
	userQueues := make([][]int, n)
	for q, o := range owner {
		userQueues[o] = append(userQueues[o], q)
	}

	nextArr := make([]float64, n)   // next Poisson arrival (open users)
	returns := make([][]float64, n) // future re-arrivals (closed users)
	for i, u := range users {
		nextArr[i] = duration + 1
		if !active(u) {
			continue
		}
		if u.closed {
			// Stagger the initial population over one think time.
			for p := 0; p < u.population; p++ {
				returns[i] = append(returns[i], rng.Range(0, u.thinkSec+1e-9))
			}
		} else {
			nextArr[i] = rng.Exp(1 / u.offered)
		}
	}

	serveSec := func(i int) float64 {
		s := serviceOf(users[i])
		if cfg.Jitter > 0 {
			s = rng.Jitter(s, cfg.Jitter)
		}
		return s
	}

	type stats struct {
		served     int
		admitted   int
		sojournSum float64
		serviceSum float64
	}
	st := make([]stats, n)

	enqueue := func(i int, at float64) {
		if at > warmup {
			st[i].admitted++
		}
		qs := userQueues[i]
		var q int
		if users[i].closed {
			// Per-core queue pairs: each outstanding request goes to the
			// emptiest of the user's queues, so cores never queue behind
			// their siblings.
			q = qs[0]
			best := len(queues[q].times) - queues[q].head
			for _, cand := range qs[1:] {
				if b := len(queues[cand].times) - queues[cand].head; b < best {
					best = b
					q = cand
				}
			}
		} else {
			q = qs[rng.Intn(len(qs))]
		}
		f := &queues[q]
		if len(f.times)-f.head < maxBacklog {
			f.times = append(f.times, at)
		}
	}

	admit := func(now float64) {
		for i, u := range users {
			if u.offered > 0 && !u.closed {
				for nextArr[i] <= now {
					enqueue(i, nextArr[i])
					nextArr[i] += rng.Exp(1 / u.offered)
				}
			}
			if rs := returns[i]; len(rs) > 0 {
				kept := rs[:0]
				for _, at := range rs {
					if at <= now {
						enqueue(i, at)
					} else {
						kept = append(kept, at)
					}
				}
				returns[i] = kept
			}
		}
	}

	now := 0.0
	rr := 0
	for now < duration {
		admit(now)
		// Scan queues once from the RR pointer for a pending request.
		served := false
		for k := 0; k < len(queues); k++ {
			q := (rr + k) % len(queues)
			f := &queues[q]
			if f.head >= len(f.times) {
				continue
			}
			arr := f.times[f.head]
			f.head++
			if f.head > 1024 && f.head*2 > len(f.times) {
				f.times = append([]float64(nil), f.times[f.head:]...)
				f.head = 0
			}
			i := owner[q]
			s := serveSec(i)
			now += s
			if now > warmup {
				st[i].served++
				st[i].sojournSum += now - arr // wait + service
				st[i].serviceSum += s
			}
			if users[i].closed {
				think := users[i].thinkSec
				if cfg.Jitter > 0 && think > 0 {
					think = rng.Jitter(think, cfg.Jitter)
				}
				returns[i] = append(returns[i], now+think)
			}
			rr = (q + 1) % len(queues)
			served = true
			break
		}
		if !served {
			// Idle: jump to the next arrival or return.
			next := duration + 1
			for i := range users {
				if users[i].offered > 0 && !users[i].closed && nextArr[i] < next {
					next = nextArr[i]
				}
				for _, at := range returns[i] {
					if at < next {
						next = at
					}
				}
			}
			if next > duration {
				break
			}
			now = next
		}
	}

	window := duration - warmup
	for i := range users {
		if st[i].served == 0 {
			// Nothing measured: report the uncontended service time so
			// callers still have a sane stage cost.
			results[i].meanService = cfg.BaseSec + users[i].bytes*cfg.PerByteSec + users[i].matches*cfg.PerMatchSec
			results[i].meanSojourn = results[i].meanService
			continue
		}
		results[i].completionRate = float64(st[i].served) / window
		results[i].offeredRate = float64(st[i].admitted) / window
		results[i].meanSojourn = st[i].sojournSum / float64(st[i].served)
		results[i].meanService = st[i].serviceSum / float64(st[i].served)
	}
	return results
}
