package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/traffic"
)

// RegistryConfig tunes a ModelRegistry.
type RegistryConfig struct {
	// Dir is the model directory. Persisted models are discovered here
	// and on-demand-trained models are written back to it. Empty disables
	// persistence (every model trains on demand, in memory only).
	Dir string
	// NIC is the hardware preset used when a model must be trained on
	// demand; the zero value selects BlueField-2.
	NIC nicsim.Config
	// Seed drives on-demand training.
	Seed uint64
	// Train configures on-demand Yala training. The zero value selects
	// backend.QuickYalaConfig — full offline training belongs in `yala
	// train`, not on a serving path.
	Train core.TrainConfig
	// SLOMO configures on-demand SLOMO training; zero value selects
	// backend.QuickSLOMOConfig.
	SLOMO slomo.Config
	// SLOMOProfile is the fixed profile SLOMO trains at; zero value
	// selects the paper default.
	SLOMOProfile traffic.Profile
	// Options carries training configuration for backends beyond the
	// built-in two, keyed by backend name. The registry passes the value
	// through opaquely (backend.TrainEnv.Options).
	Options map[string]any
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.NIC.Name == "" {
		c.NIC = nicsim.BlueField2()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Train.GBR.Trees == 0 {
		c.Train = backend.QuickYalaConfig(c.Seed)
	}
	if c.SLOMO.Samples == 0 {
		c.SLOMO = backend.QuickSLOMOConfig(c.Seed)
	}
	if c.SLOMOProfile == (traffic.Profile{}) {
		c.SLOMOProfile = traffic.Default
	}
	return c
}

// trainOptions resolves the backend-specific training configuration the
// registry hands to backend.Train. The built-in backends read the typed
// RegistryConfig fields; everything else flows through Options — so a
// new backend needs no registry edits at all.
func (c RegistryConfig) trainOptions(backendName string) any {
	switch backendName {
	case "yala":
		return c.Train
	case "slomo":
		return backend.SLOMOOptions{Config: c.SLOMO, Profile: c.SLOMOProfile}
	}
	return c.Options[backendName]
}

// entryKey identifies one model slot: a backend and NF, optionally
// qualified by a hardware key (a NIC-class name) for fleets that mix
// hardware targets. The empty hardware key is the registry's default
// NIC preset and maps to the unqualified on-disk layout.
type entryKey struct {
	backend string
	hw      string
	name    string
}

// ModelRegistry loads persisted per-NF models lazily and concurrently
// safely: the first Get for a key performs the load (or trains and
// persists when no model file exists) while every concurrent Get for the
// same key blocks until that one attempt resolves (flightGroup). Failed
// loads are not cached; the next Get retries. The registry is fully
// backend-generic — every load, train, persist and listing path goes
// through the internal/backend interface, so registering a new backend
// makes it servable with zero edits here.
type ModelRegistry struct {
	cfg RegistryConfig

	models FlightGroup[entryKey, backend.Model]

	// hwMu guards hwConfigs, the NIC preset recorded per hardware key so
	// Models() and retries agree on what a key means.
	hwMu      sync.Mutex
	hwConfigs map[string]nicsim.Config

	// persistFails counts model-persistence failures; lastPersistErr
	// keeps the most recent one. A persist failure must not discard a
	// trained model or fail the request — serving stays up, the operator
	// sees the failure in stats.
	statMu         sync.Mutex
	persistFails   uint64
	lastPersistErr string

	// trainHook, when set, observes every on-demand training (tests):
	// backend, hardware key ("" = default NIC), NF name.
	trainHook func(Backend, string, string)

	// metaMu guards meta: per-key generation and training timestamp. A
	// key's generation counts how many times this process resolved a
	// fresh model for it — load-from-disk, on-demand train, or promotion
	// all bump it, so an external observer polling /v2/models can detect
	// "the served model changed" without diffing model bytes.
	metaMu sync.Mutex
	meta   map[entryKey]modelMeta
}

// modelMeta is the registry's per-model bookkeeping beyond the model
// itself.
type modelMeta struct {
	generation uint64
	trainedAt  time.Time
}

// NewRegistry returns a registry over a model directory.
func NewRegistry(cfg RegistryConfig) *ModelRegistry {
	return &ModelRegistry{cfg: cfg.withDefaults()}
}

// stem is the key's on-disk name component: <nf> for the default
// hardware, <nf>@<hw> for a named key — the one place the mangling rule
// lives.
func (k entryKey) stem() string {
	if k.hw == "" {
		return k.name
	}
	return k.name + "@" + k.hw
}

// modelPath is the on-disk location for one model:
// <dir>/<stem>.<backend>.json. The NF name keeps its catalog casing so
// names discovered from disk round-trip into requests and Reload calls
// unchanged.
func (r *ModelRegistry) modelPath(key entryKey) string {
	return filepath.Join(r.cfg.Dir, fmt.Sprintf("%s.%s.json", key.stem(), key.backend))
}

// validHW rejects hardware keys that cannot serve as a file-name
// component or would alias the default layout.
func validHW(hw string) error {
	if hw == "" {
		return nil
	}
	for _, c := range hw {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("serve: invalid hardware key %q (want lowercase [a-z0-9-_])", hw)
		}
	}
	return nil
}

// hwConfig resolves the NIC preset for a hardware key, recording it on
// first use: "" is the registry's default NIC; a named key must supply
// its config on first use and later lookups may omit it (zero Config).
func (r *ModelRegistry) hwConfig(hw string, nic nicsim.Config) (nicsim.Config, error) {
	if hw == "" {
		return r.cfg.NIC, nil
	}
	if err := validHW(hw); err != nil {
		return nicsim.Config{}, err
	}
	r.hwMu.Lock()
	defer r.hwMu.Unlock()
	if r.hwConfigs == nil {
		r.hwConfigs = map[string]nicsim.Config{}
	}
	known, seen := r.hwConfigs[hw]
	if nic.Name != "" {
		// A key means one hardware preset for the registry's lifetime:
		// models cached and persisted under it were trained against that
		// preset, so a conflicting re-registration must fail rather than
		// silently serve old-hardware models for a new meaning of the key.
		if seen && known.Name != nic.Name {
			return nicsim.Config{}, fmt.Errorf("serve: hardware key %q already bound to NIC %q, cannot rebind to %q", hw, known.Name, nic.Name)
		}
		r.hwConfigs[hw] = nic
		return nic, nil
	}
	if seen {
		return known, nil
	}
	return nicsim.Config{}, fmt.Errorf("serve: hardware key %q has no NIC config registered", hw)
}

// Model returns the named backend's model for an NF on the registry's
// default NIC, loading it from the model directory or training it on
// demand on first use.
func (r *ModelRegistry) Model(backendName, name string) (backend.Model, error) {
	return r.ModelOn(backendName, "", nicsim.Config{}, name)
}

// ModelOn is the hardware-keyed lookup behind heterogeneous fleets: it
// returns the backend's model for an NF trained against the given NIC
// preset, keyed (and persisted) under hw. The empty hw selects the
// registry's default NIC and the unqualified on-disk layout;
// duplicate-load suppression applies per (backend, hw, NF) key. It is
// the serve-side implementation of cluster.ModelSource.
func (r *ModelRegistry) ModelOn(backendName, hw string, nic nicsim.Config, name string) (backend.Model, error) {
	b, ok := backend.Get(backendName)
	if !ok {
		return nil, fmt.Errorf("serve: unknown backend %q (have %s)", backendName, strings.Join(backend.Names(), ", "))
	}
	cfg, err := r.hwConfig(hw, nic)
	if err != nil {
		return nil, err
	}
	return r.models.Do(entryKey{backendName, hw, name}, 0, func() (backend.Model, error) {
		return r.load(b, entryKey{backendName, hw, name}, cfg)
	})
}

// Reload drops the cached model — across every hardware key — so the
// next Get re-reads the model directory. Callers also serving memoized
// responses computed with the old model must flush those too —
// Service.Reload does both.
func (r *ModelRegistry) Reload(backendName, name string) {
	r.models.ForgetMatching(func(k entryKey) bool {
		return k.backend == backendName && k.name == name
	})
}

// load reads the persisted model, or trains and persists one against
// the key's NIC preset. An unreadable model file (e.g. truncated by a
// crash mid-write) also falls through to retraining, which rewrites it —
// a corrupt file must not permanently wedge an NF's serving path.
func (r *ModelRegistry) load(b backend.Backend, key entryKey, nic nicsim.Config) (backend.Model, error) {
	if r.cfg.Dir != "" {
		if m, err := b.Load(r.modelPath(key)); err == nil {
			r.bumpGeneration(key)
			return m, nil
		}
	}
	if r.trainHook != nil {
		r.trainHook(Backend(key.backend), key.hw, key.name)
	}
	m, err := b.Train(backend.TrainEnv{
		NIC:     nic,
		Seed:    r.cfg.Seed,
		Options: r.cfg.trainOptions(key.backend),
	}, key.name)
	if err != nil {
		return nil, fmt.Errorf("serve: training %s/%s on %s: %w", key.backend, key.name, nic.Name, err)
	}
	r.persist(key, func(path string) error { return b.Save(m, path) })
	r.bumpGeneration(key)
	return m, nil
}

// bumpGeneration records that a fresh model resolved for the key.
func (r *ModelRegistry) bumpGeneration(key entryKey) {
	r.metaMu.Lock()
	if r.meta == nil {
		r.meta = map[entryKey]modelMeta{}
	}
	prev := r.meta[key]
	r.meta[key] = modelMeta{generation: prev.generation + 1, trainedAt: time.Now()}
	r.metaMu.Unlock()
}

// metaOf returns the recorded metadata for a key (zero if never
// resolved in this process).
func (r *ModelRegistry) metaOf(key entryKey) modelMeta {
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	return r.meta[key]
}

// Install atomically replaces the served model for (backend, hw, nf)
// with a candidate trained out-of-band — the promotion path of the
// online-feedback loop. The model is persisted (same atomic
// temp+rename as on-demand training), swapped into the in-memory memo
// so the very next Predict uses it with no empty-slot window, and the
// key's generation is bumped. Callers serving memoized responses
// computed with the old model must flush those too — Service.promote
// does both.
func (r *ModelRegistry) Install(backendName, hw, nf string, m backend.Model) error {
	b, ok := backend.Get(backendName)
	if !ok {
		return fmt.Errorf("serve: unknown backend %q (have %s)", backendName, strings.Join(backend.Names(), ", "))
	}
	if err := validHW(hw); err != nil {
		return err
	}
	key := entryKey{backendName, hw, nf}
	r.persist(key, func(path string) error { return b.Save(m, path) })
	r.models.Put(key, m)
	r.bumpGeneration(key)
	return nil
}

// persist writes a model file atomically (temp + rename, so a crash
// mid-write never leaves a truncated model where a valid one is
// expected) and records rather than returns failures: the freshly
// trained in-memory model is still good, so the NF keeps serving.
func (r *ModelRegistry) persist(key entryKey, save func(string) error) {
	if r.cfg.Dir == "" {
		return
	}
	path := r.modelPath(key)
	tmp := path + ".tmp"
	err := save(tmp)
	if err == nil {
		err = os.Rename(tmp, path)
	} else {
		os.Remove(tmp)
	}
	if err != nil {
		r.statMu.Lock()
		r.persistFails++
		r.lastPersistErr = fmt.Sprintf("%s/%s: %v", key.backend, key.stem(), err)
		r.statMu.Unlock()
	}
}

// PersistFailures reports how many model persists have failed and the
// most recent failure.
func (r *ModelRegistry) PersistFailures() (uint64, string) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return r.persistFails, r.lastPersistErr
}

// ModelInfo describes one model the registry knows about. HW is empty
// for models on the registry's default NIC preset. The /v1 wire shape
// is frozen; the /v2 listing wraps it with a resource ID.
type ModelInfo struct {
	NF      string  `json:"nf"`
	HW      string  `json:"hw,omitempty"`
	Backend Backend `json:"backend"`
	Loaded  bool    `json:"loaded"`
	OnDisk  bool    `json:"on_disk"`
	// Generation counts fresh model resolutions for this key in this
	// process (load, train, or promotion); 0 means the model has only
	// been seen on disk. TrainedAt is the Unix time of the latest one.
	Generation uint64 `json:"generation,omitempty"`
	TrainedAt  int64  `json:"trained_at,omitempty"`
}

// ResourceID is the /v2 resource name for the model: "<nf>[@<hw>]/<backend>".
func (i ModelInfo) ResourceID() string {
	stem := i.NF
	if i.HW != "" {
		stem += "@" + i.HW
	}
	return stem + "/" + string(i.Backend)
}

// infoOf renders one entry's listing form.
func infoOf(key entryKey) *ModelInfo {
	return &ModelInfo{
		NF:      key.name,
		HW:      key.hw,
		Backend: Backend(key.backend),
	}
}

// Models lists every model discovered in the model directory plus every
// model loaded (or trained) in memory, sorted by NF, hardware key, then
// backend. Discovery spans every registered backend's on-disk suffix.
func (r *ModelRegistry) Models() []ModelInfo {
	infos := map[entryKey]*ModelInfo{}
	if r.cfg.Dir != "" {
		ents, err := os.ReadDir(r.cfg.Dir)
		if err == nil {
			for _, de := range ents {
				name := de.Name()
				for _, b := range backend.Names() {
					suffix := fmt.Sprintf(".%s.json", b)
					stem, ok := strings.CutSuffix(name, suffix)
					if !ok || stem == "" {
						continue
					}
					nf, hw, _ := strings.Cut(stem, "@")
					if nf == "" {
						continue
					}
					key := entryKey{b, hw, nf}
					info := infoOf(key)
					info.OnDisk = true
					infos[key] = info
				}
			}
		}
	}
	for _, key := range r.models.Resolved() {
		if info, ok := infos[key]; ok {
			info.Loaded = true
		} else {
			info := infoOf(key)
			info.Loaded = true
			infos[key] = info
		}
	}
	for key, info := range infos {
		if m := r.metaOf(key); m.generation > 0 {
			info.Generation = m.generation
			info.TrainedAt = m.trainedAt.Unix()
		}
	}
	out := make([]ModelInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NF != out[j].NF {
			return out[i].NF < out[j].NF
		}
		if out[i].HW != out[j].HW {
			return out[i].HW < out[j].HW
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}
