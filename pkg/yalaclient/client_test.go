package yalaclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestModelIDString(t *testing.T) {
	if got := (ModelID{NF: "FlowStats"}).String(); got != "FlowStats" {
		t.Fatalf("plain id %q", got)
	}
	if got := (ModelID{NF: "FlowStats", HW: "pensando"}).String(); got != "FlowStats@pensando" {
		t.Fatalf("qualified id %q", got)
	}
}

// TestWithTimeoutOrderSafe locks in the option contract: the timeout
// applies regardless of option order and never mutates a caller-owned
// http.Client.
func TestWithTimeoutOrderSafe(t *testing.T) {
	shared := &http.Client{}
	c := New("http://x", WithTimeout(5*time.Second), WithHTTPClient(shared))
	if c.httpc.Timeout != 5*time.Second {
		t.Fatalf("timeout lost when WithHTTPClient follows: %v", c.httpc.Timeout)
	}
	if shared.Timeout != 0 {
		t.Fatalf("caller-owned client mutated: %v", shared.Timeout)
	}
	c = New("http://x", WithHTTPClient(shared), WithTimeout(5*time.Second))
	if c.httpc.Timeout != 5*time.Second || shared.Timeout != 0 {
		t.Fatalf("reversed order: client %v, shared %v", c.httpc.Timeout, shared.Timeout)
	}
}

// TestAPIErrorDecoding covers both envelope shapes and the raw-status
// fallback.
func TestAPIErrorDecoding(t *testing.T) {
	var body atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(body.Load().(string)))
	}))
	defer ts.Close()
	c := New(ts.URL)

	body.Store(`{"error":{"code":"invalid_argument","message":"nope","request_id":"req-000042"}}`)
	_, err := c.Predict(context.Background(), ModelID{NF: "x"}, "", PredictParams{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "invalid_argument" || apiErr.RequestID != "req-000042" {
		t.Fatalf("v2 envelope decoded as %v", err)
	}

	body.Store(`{"error":"flat message"}`)
	_, err = c.Predict(context.Background(), ModelID{NF: "x"}, "", PredictParams{})
	if !errors.As(err, &apiErr) || apiErr.Message != "flat message" || apiErr.Code != "" {
		t.Fatalf("v1 envelope decoded as %v", err)
	}

	body.Store(`not json at all`)
	_, err = c.Predict(context.Background(), ModelID{NF: "x"}, "", PredictParams{})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw fallback decoded as %v", err)
	}
}

// TestRetries asserts 5xx responses retry up to the configured budget
// and 4xx responses never do.
func TestRetries(t *testing.T) {
	var calls atomic.Int64
	var status atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(int(status.Load()))
		w.Write([]byte(`{"error":{"code":"unavailable","message":"busy"}}`))
	}))
	defer ts.Close()

	status.Store(http.StatusServiceUnavailable)
	c := New(ts.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("expected error from always-503 server")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("5xx retried %d calls, want 3 (1 + 2 retries)", got)
	}

	calls.Store(0)
	status.Store(http.StatusBadRequest)
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("expected error from 400 server")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx retried %d calls, want exactly 1", got)
	}
}

// TestIngestBatch covers the ingest round trip: the wire shape renders
// model IDs as resource names, the result decodes, and — because a
// repeated batch merely re-observes bounded windows — transport flakes
// retry like any idempotent call.
func TestIngestBatch(t *testing.T) {
	var calls atomic.Int64
	var failFirst atomic.Int64
	var gotBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/ingest" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		if calls.Add(1) <= failFirst.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"unavailable","message":"busy"}}`))
			return
		}
		var params struct {
			Measurements []map[string]any `json:"measurements"`
		}
		if err := json.NewDecoder(r.Body).Decode(&params); err != nil {
			t.Errorf("decoding ingest body: %v", err)
		}
		gotBody.Store(params.Measurements)
		fmt.Fprintf(w, `{"accepted":%d,"quarantined":0}`, len(params.Measurements))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	failFirst.Store(1)
	res, err := c.IngestBatch(context.Background(), []Measurement{
		{Model: ModelID{NF: "FlowStats", HW: "pensando"}, Backend: "yala", MeasuredPPS: 1e6, Source: "rig-1"},
		{Model: ModelID{NF: "ACL"}, MeasuredPPS: 2e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.Quarantined != 0 {
		t.Fatalf("ingest result %+v", res)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("flaked ingest made %d calls, want 2 (1 failure + 1 retry)", got)
	}
	ms := gotBody.Load().([]map[string]any)
	if len(ms) != 2 || ms[0]["model"] != "FlowStats@pensando" || ms[1]["model"] != "ACL" {
		t.Fatalf("wire measurements %+v", ms)
	}
	if ms[0]["source"] != "rig-1" || ms[0]["measured_pps"] != 1e6 {
		t.Fatalf("measurement fields %+v", ms[0])
	}

	// Single-measurement convenience form.
	calls.Store(0)
	failFirst.Store(0)
	if res, err = c.Ingest(context.Background(), Measurement{Model: ModelID{NF: "NAT"}, MeasuredPPS: 5e5}); err != nil || res.Accepted != 1 {
		t.Fatalf("single ingest: %+v, %v", res, err)
	}
}

// TestRetryIdempotency is the non-idempotent-retry contract: a flaky
// server that answers the first attempt with a 500 (or kills the
// connection mid-response) must see exactly one :reload attempt — the
// request may already have been acted on — while :predict, which is
// deterministic and safe to duplicate, retries through the same flake
// and succeeds.
func TestRetryIdempotency(t *testing.T) {
	var calls atomic.Int64
	var failFirst atomic.Int64 // how many leading calls fail
	var hijack atomic.Bool     // fail by severing the connection instead of a 500
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= failFirst.Load() {
			if hijack.Load() {
				// An ambiguous transport error: the request was fully
				// received, then the connection dies without a response.
				conn, _, err := w.(http.Hijacker).Hijack()
				if err != nil {
					t.Errorf("hijack: %v", err)
					return
				}
				conn.Close()
				return
			}
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":{"code":"internal","message":"flake"}}`))
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(3), WithRetryBackoff(time.Millisecond))
	ctx := context.Background()

	// Idempotent predict rides through a one-500 flake.
	failFirst.Store(1)
	if _, err := c.Predict(ctx, ModelID{NF: "ACL"}, "", PredictParams{}); err != nil {
		t.Fatalf("predict through a 500 flake: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("predict made %d attempts, want 2", got)
	}

	// Non-idempotent reload must not retry a 5xx: the server saw it.
	calls.Store(0)
	failFirst.Store(1)
	if err := c.Reload(ctx, ModelID{NF: "ACL"}, "yala"); err == nil {
		t.Fatal("reload through a 500 flake must fail, not retry")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("reload made %d attempts on a 5xx, want exactly 1", got)
	}

	// ...nor an ambiguous transport error (connection severed after the
	// request was delivered).
	calls.Store(0)
	failFirst.Store(1)
	hijack.Store(true)
	if err := c.Reload(ctx, ModelID{NF: "ACL"}, "yala"); err == nil {
		t.Fatal("reload through a severed connection must fail, not retry")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("reload made %d attempts on a severed connection, want exactly 1", got)
	}

	// The same severed connection is retried for the idempotent predict.
	calls.Store(0)
	failFirst.Store(1)
	if _, err := c.Predict(ctx, ModelID{NF: "ACL"}, "", PredictParams{}); err != nil {
		t.Fatalf("predict through a severed connection: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("predict made %d attempts, want 2", got)
	}
}

// TestReloadRetriesDialFailure: a dial failure proves the request never
// left the client, so even the non-idempotent reload may retry it.
func TestReloadRetriesDialFailure(t *testing.T) {
	// A server that dies after the client learns its address: every
	// subsequent dial is refused.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	start := time.Now()
	err := New(url, WithRetries(2), WithRetryBackoff(time.Millisecond)).
		Reload(context.Background(), ModelID{NF: "ACL"}, "yala")
	if err == nil {
		t.Fatal("reload against a dead server must fail")
	}
	// Three dial attempts with 1ms+2ms backoff — if the dial-failure
	// path skipped retries the call would return almost instantly; the
	// real assertion is just that it does not hang and does not panic.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retries took %v", elapsed)
	}
	if !dialError(errors.Unwrap(err)) && !dialError(err) {
		t.Fatalf("expected a dial-classified error, got %v", err)
	}
}

// TestRetryHonorsContext: cancellation between attempts ends the retry
// loop immediately with the context's error, no matter how much retry
// budget remains.
func TestRetryHonorsContext(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"unavailable","message":"busy"}}`))
	}))
	defer ts.Close()

	// A huge backoff and budget: without the ctx check the loop would
	// park for minutes.
	c := New(ts.URL, WithRetries(100), WithRetryBackoff(time.Minute))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Stats(ctx)
		done <- err
	}()
	// Wait for the first attempt to land, then cancel mid-backoff.
	for i := 0; calls.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled retry loop returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored context cancellation")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("canceled loop made %d attempts, want 1", got)
	}

	// A context canceled before the call starts never reaches the wire.
	calls.Store(0)
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := c.Stats(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled call returned %v", err)
	}
}

// TestWithAPIKeyHeader: the key rides every request as a Bearer token.
func TestWithAPIKeyHeader(t *testing.T) {
	var auth atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		auth.Store(r.Header.Get("Authorization"))
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithAPIKey(" k-team-a "))
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := auth.Load().(string); got != "Bearer k-team-a" {
		t.Fatalf("Authorization = %q, want trimmed bearer token", got)
	}
}

// TestParseRetryAfter covers both RFC 9110 forms and the junk cases.
func TestParseRetryAfter(t *testing.T) {
	if got := parseRetryAfter("3"); got != 3*time.Second {
		t.Fatalf("delta-seconds: %v", got)
	}
	if got := parseRetryAfter("-2"); got != 0 {
		t.Fatalf("negative: %v", got)
	}
	if got := parseRetryAfter(""); got != 0 {
		t.Fatalf("absent: %v", got)
	}
	if got := parseRetryAfter("soon"); got != 0 {
		t.Fatalf("garbage: %v", got)
	}
	date := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(date); got <= 25*time.Second || got > 30*time.Second {
		t.Fatalf("http-date: %v", got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Fatalf("past http-date: %v", got)
	}
}

// TestRateLimitErrorTyped: a 429 surfaces as *RateLimitError carrying
// the envelope fields and the parsed Retry-After.
func TestRateLimitErrorTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"resource_exhausted","message":"tenant over limit","request_id":"req-000007"}}`))
	}))
	defer ts.Close()
	_, err := New(ts.URL).Stats(context.Background())
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("429 decoded as %T: %v", err, err)
	}
	if rle.StatusCode != http.StatusTooManyRequests || rle.Code != "resource_exhausted" ||
		rle.RequestID != "req-000007" || rle.RetryAfter != 2*time.Second {
		t.Fatalf("rate-limit error fields: %+v", rle)
	}
}

// TestRateLimitRetryHonorsRetryAfter: with retry budget, the loop waits
// out the server's hint and then succeeds — including for the
// non-idempotent reload, since a 429 proves the request was shed before
// any work.
func TestRateLimitRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"resource_exhausted","message":"slow down"}}`))
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(1), WithRetryBackoff(time.Millisecond))

	start := time.Now()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("stats through a 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry waited %v, want ~1s per Retry-After (not the 1ms backoff)", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("made %d attempts, want 2", got)
	}

	calls.Store(0)
	if err := c.Reload(context.Background(), ModelID{NF: "ACL"}, "yala"); err != nil {
		t.Fatalf("reload through a 429: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("reload made %d attempts through a 429, want 2", got)
	}
}

// TestRateLimitFailsFastOnShortDeadline: when the caller's deadline
// cannot cover the advertised wait, the loop returns the structured
// refusal immediately instead of sleeping into DeadlineExceeded.
func TestRateLimitFailsFastOnShortDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"resource_exhausted","message":"slow down"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(5), WithRetryBackoff(time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(ctx)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("short-deadline 429 returned %v, want *RateLimitError", err)
	}
	if rle.RetryAfter != 5*time.Second {
		t.Fatalf("Retry-After %v, want 5s", rle.RetryAfter)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("fail-fast took %v — the loop slept on a hopeless wait", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("made %d attempts, want 1 (deadline cannot cover any retry)", got)
	}
}

// TestRequestShapes pins the wire paths and bodies the SDK emits.
func TestRequestShapes(t *testing.T) {
	type seen struct {
		method, path, body string
	}
	var last atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, r.ContentLength+1)
		n, _ := r.Body.Read(buf)
		last.Store(seen{r.Method, r.URL.RequestURI(), string(buf[:n])})
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	if _, err := c.Predict(ctx, ModelID{NF: "FlowStats", HW: "pensando"}, "slomo", PredictParams{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models/FlowStats@pensando/slomo:predict" {
		t.Fatalf("predict path %q", got.path)
	}

	if _, err := c.Predict(ctx, ModelID{NF: "ACL"}, "", PredictParams{}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models/ACL/yala:predict" {
		t.Fatalf("default-backend path %q", got.path)
	}

	if err := c.Reload(ctx, ModelID{NF: "ACL"}, "yala"); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models/ACL/yala:reload" || got.body != "" {
		t.Fatalf("reload request %+v", got)
	}

	if _, err := c.PredictBatch(ctx, []BatchItem{{Model: ModelID{NF: "NAT"}}}); err != nil {
		t.Fatal(err)
	}
	got := last.Load().(seen)
	if got.path != "/v2/models:batchPredict" {
		t.Fatalf("batch path %q", got.path)
	}
	var batch struct {
		Requests []map[string]any `json:"requests"`
	}
	if err := json.Unmarshal([]byte(got.body), &batch); err != nil || len(batch.Requests) != 1 {
		t.Fatalf("batch body %q: %v", got.body, err)
	}
	if batch.Requests[0]["model"] != "NAT" {
		t.Fatalf("batch element %+v", batch.Requests[0])
	}

	if _, err := c.ListModels(ctx, ListModelsParams{PageSize: 2, PageToken: "tok"}); err != nil {
		t.Fatal(err)
	}
	if got := last.Load().(seen); got.path != "/v2/models?page_size=2&page_token=tok" {
		t.Fatalf("list path %q", got.path)
	}
}

// TestAllModelsPagination walks a two-page listing.
func TestAllModelsPagination(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("page_token") == "" {
			fmt.Fprint(w, `{"models":[{"id":"A/yala"},{"id":"B/yala"}],"next_page_token":"p2","total_size":3}`)
			return
		}
		fmt.Fprint(w, `{"models":[{"id":"C/yala"}],"total_size":3}`)
	}))
	defer ts.Close()
	models, err := New(ts.URL).AllModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 || models[2].ID != "C/yala" {
		t.Fatalf("paginated walk: %+v", models)
	}
}
