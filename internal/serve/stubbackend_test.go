package serve

// This file is the pluggability proof for the backend redesign: a
// third prediction backend — a constant-throughput stub — registered
// entirely from test code, with ZERO edits to registry.go or the HTTP
// layer. The test walks it through the full serving surface: on-demand
// training, persistence, reload-from-disk, model listing, and /v2
// prediction.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
	"repro/internal/nf"
)

// fakeBackend predicts a constant solo throughput that degrades
// harmonically with competitor count — deliberately trivial, so the
// test asserts plumbing rather than model quality.
type fakeBackend struct{}

type fakeModel struct {
	Name string  `json:"name"`
	PPS  float64 `json:"pps"`
}

func (m fakeModel) NF() string { return m.Name }

func (fakeBackend) Name() string { return "fake" }

func (fakeBackend) Train(env backend.TrainEnv, name string) (backend.Model, error) {
	if !nf.Known(name) {
		return nil, fmt.Errorf("fake: unknown NF %q", name)
	}
	return fakeModel{Name: name, PPS: 1e6}, nil
}

func (fakeBackend) Predict(m backend.Model, sc backend.Scenario) (backend.Prediction, error) {
	fm, ok := m.(fakeModel)
	if !ok {
		return backend.Prediction{}, fmt.Errorf("fake: foreign model %T", m)
	}
	return backend.Prediction{
		SoloPPS:      fm.PPS,
		PredictedPPS: fm.PPS / float64(1+len(sc.Competitors)),
	}, nil
}

func (fakeBackend) Save(m backend.Model, path string) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func (fakeBackend) Load(path string) (backend.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m fakeModel
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, err
	}
	if m.Name == "" || m.PPS <= 0 {
		return nil, fmt.Errorf("fake: %s is not a fake model", path)
	}
	return m, nil
}

func init() { backend.Register(fakeBackend{}) }

// TestStubBackendEndToEnd walks the registered stub through the whole
// serving stack.
func TestStubBackendEndToEnd(t *testing.T) {
	cfg := testRegistryConfig(t)
	reg := NewRegistry(cfg)
	var trainings atomic.Int64
	reg.trainHook = func(b Backend, hw, name string) {
		if b == "fake" {
			trainings.Add(1)
		}
	}

	// Train-on-demand and persistence through the generic registry.
	m, err := reg.Model("fake", "FlowStats")
	if err != nil {
		t.Fatal(err)
	}
	if m.NF() != "FlowStats" || trainings.Load() != 1 {
		t.Fatalf("stub training: model %v, trainings %d", m, trainings.Load())
	}
	if _, err := os.Stat(filepath.Join(cfg.Dir, "FlowStats.fake.json")); err != nil {
		t.Fatalf("stub model not persisted: %v", err)
	}

	// A fresh registry loads the persisted stub model without retraining.
	reg2 := NewRegistry(cfg)
	reg2.trainHook = func(b Backend, hw, name string) {
		if b == "fake" {
			t.Errorf("unexpected stub retraining of %s@%q", name, hw)
		}
	}
	if m2, err := reg2.Model("fake", "FlowStats"); err != nil || m2.NF() != "FlowStats" {
		t.Fatalf("reloading stub model: %v (err %v)", m2, err)
	}

	// Model listing discovers the stub's on-disk file like any builtin.
	found := false
	for _, info := range reg2.Models() {
		if info.Backend == "fake" && info.NF == "FlowStats" && info.OnDisk {
			found = true
			if got := info.ResourceID(); got != "FlowStats/fake" {
				t.Fatalf("stub resource ID %q", got)
			}
		}
	}
	if !found {
		t.Fatalf("stub model missing from listing: %+v", reg2.Models())
	}
}

// TestStubBackendHTTP drives the stub through the /v2 API: predict,
// listing, and the scheduler-policy surface — all without the server
// knowing the backend exists at compile time.
func TestStubBackendHTTP(t *testing.T) {
	ts := testServer(t)

	resp := postAs[PredictResponse](t, ts, "/v2/models/FlowStats/fake:predict",
		predictParamsV2{Competitors: []CompetitorSpec{{Name: "ACL"}}})
	if resp.Backend != "fake" || resp.SoloPPS != 1e6 || resp.PredictedPPS != 5e5 {
		t.Fatalf("stub /v2 prediction: %+v", resp)
	}

	// The stub shares the generic validation path: unknown NFs are 400s.
	status, body := postRaw(t, ts, "/v2/models/NoSuchNF/fake:predict", `{}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown NF") {
		t.Fatalf("stub bad-NF: status %d body %s", status, body)
	}

	// A registered backend is automatically a scheduling policy.
	policies := getAs[ClusterPoliciesResponse](t, ts, "/v2/cluster/policies")
	hasFake := false
	for _, p := range policies.Policies {
		hasFake = hasFake || p == "fake"
	}
	if !hasFake {
		t.Fatalf("policies %v missing the stub backend", policies.Policies)
	}
}
