package nf

// FlowEntry is one slot of a FlowTable. The layout approximates a 64-byte
// cache line: an occupancy tag, the flow key hash, and six 64-bit data
// words for the owning NF.
type FlowEntry struct {
	used bool
	key  uint64
	Data [6]uint64
}

// entryBytes is the modeled memory footprint of one slot.
const entryBytes = 64

// FlowTable is an open-addressing (linear probing) hash table keyed by
// flow-key hashes, the per-flow state structure the NFs share. It exposes
// probe counts so footprint measurement can translate lookups into cache
// references, the way the paper's hash-table NFs stress the LLC.
type FlowTable struct {
	slots []FlowEntry
	count int
}

// minTableSlots is the initial capacity (a power of two).
const minTableSlots = 1024

// maxLoad is the load factor that triggers growth.
const maxLoad = 0.75

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{slots: make([]FlowEntry, minTableSlots)}
}

// Len returns the number of live entries.
func (t *FlowTable) Len() int { return t.count }

// StateBytes is the table's memory footprint in bytes.
func (t *FlowTable) StateBytes() float64 { return float64(len(t.slots) * entryBytes) }

// Reset drops all entries and shrinks back to the initial capacity.
func (t *FlowTable) Reset() {
	t.slots = make([]FlowEntry, minTableSlots)
	t.count = 0
}

// Reserve grows the table so n entries fit without triggering growth —
// one allocation instead of a doubling cascade when the flow population
// is known up front. It never shrinks.
func (t *FlowTable) Reserve(n int) {
	need := minTableSlots
	for float64(n) > maxLoad*float64(need) {
		need *= 2
	}
	if need > len(t.slots) {
		t.rehash(need)
	}
}

// Lookup finds the entry for key. It returns the entry (nil if absent)
// and the number of slots probed.
func (t *FlowTable) Lookup(key uint64) (*FlowEntry, int) {
	mask := uint64(len(t.slots) - 1)
	idx := key & mask
	for probes := 1; probes <= len(t.slots); probes++ {
		e := &t.slots[idx]
		if !e.used {
			return nil, probes
		}
		if e.key == key {
			return e, probes
		}
		idx = (idx + 1) & mask
	}
	return nil, len(t.slots)
}

// Insert finds or creates the entry for key, growing the table if needed.
// It returns the entry, the probe count, and whether the entry was newly
// created.
func (t *FlowTable) Insert(key uint64) (*FlowEntry, int, bool) {
	if float64(t.count+1) > maxLoad*float64(len(t.slots)) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	idx := key & mask
	for probes := 1; ; probes++ {
		e := &t.slots[idx]
		if !e.used {
			e.used = true
			e.key = key
			e.Data = [6]uint64{}
			t.count++
			return e, probes, true
		}
		if e.key == key {
			return e, probes, false
		}
		idx = (idx + 1) & mask
	}
}

func (t *FlowTable) grow() { t.rehash(2 * len(t.slots)) }

func (t *FlowTable) rehash(size int) {
	old := t.slots
	t.slots = make([]FlowEntry, size)
	t.count = 0
	mask := uint64(len(t.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		idx := old[i].key & mask
		for {
			if !t.slots[idx].used {
				t.slots[idx] = old[i]
				t.count++
				break
			}
			idx = (idx + 1) & mask
		}
	}
}
