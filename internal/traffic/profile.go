// Package traffic generates workloads for the network functions: traffic
// profiles (flow count, packet size, match-to-byte ratio), flow sets,
// packet batches, and payloads synthesized to hit a target MTBR against
// the shared ruleset — the role DPDK-Pktgen and exrex play in the paper.
package traffic

import (
	"fmt"

	"repro/internal/sim"
)

// Profile describes the traffic attributes the paper models (§5.1): flow
// count, packet size in bytes, and match-to-byte ratio in matches per
// megabyte of payload. A profile of 16K flows, 1500B packets and
// 600 matches/MB is written (16000, 1500, 600).
type Profile struct {
	Flows   int
	PktSize int
	MTBR    float64
}

// Default is the paper's default traffic profile: 16K flows, 1500B
// packets, 600 matches/MB.
var Default = Profile{Flows: 16000, PktSize: 1500, MTBR: 600}

// Attribute identifies one traffic attribute dimension. The adaptive
// profiler (Algorithm 1) prunes and bisects over these.
type Attribute int

// Attribute dimensions in Vector order.
const (
	AttrFlows Attribute = iota
	AttrPktSize
	AttrMTBR
	NumAttributes
)

// String names the attribute.
func (a Attribute) String() string {
	switch a {
	case AttrFlows:
		return "flows"
	case AttrPktSize:
		return "pktsize"
	case AttrMTBR:
		return "mtbr"
	}
	return fmt.Sprintf("attr(%d)", int(a))
}

// Bounds returns the attribute's possible range [min, max], used by
// adaptive profiling.
func (a Attribute) Bounds() (lo, hi float64) {
	switch a {
	case AttrFlows:
		return 1000, 500000
	case AttrPktSize:
		return 64, 1500
	case AttrMTBR:
		return 0, 1100
	}
	return 0, 0
}

// Vector returns the profile as a feature vector (flows, pktSize, MTBR),
// the representation fed to traffic-aware models.
func (p Profile) Vector() []float64 {
	return []float64{float64(p.Flows), float64(p.PktSize), p.MTBR}
}

// Get returns the value of one attribute.
func (p Profile) Get(a Attribute) float64 {
	switch a {
	case AttrFlows:
		return float64(p.Flows)
	case AttrPktSize:
		return float64(p.PktSize)
	case AttrMTBR:
		return p.MTBR
	}
	return 0
}

// With returns a copy of the profile with one attribute replaced.
func (p Profile) With(a Attribute, v float64) Profile {
	switch a {
	case AttrFlows:
		p.Flows = int(v)
	case AttrPktSize:
		p.PktSize = int(v)
		if p.PktSize < MinPktSize {
			p.PktSize = MinPktSize
		}
	case AttrMTBR:
		p.MTBR = v
	}
	return p
}

// String renders the profile as its attribute vector.
func (p Profile) String() string {
	return fmt.Sprintf("(%d, %d, %g)", p.Flows, p.PktSize, p.MTBR)
}

// Random returns a profile drawn uniformly from the attribute bounds,
// used for the "100 distinct traffic profiles" evaluations (§7.4). The
// flow count upper bound follows the paper's 500K.
func Random(rng *sim.RNG) Profile {
	fl, fh := AttrFlows.Bounds()
	sl, sh := AttrPktSize.Bounds()
	ml, mh := AttrMTBR.Bounds()
	return Profile{
		Flows:   int(rng.Range(fl, fh)),
		PktSize: int(rng.Range(sl, sh)),
		MTBR:    rng.Range(ml, mh),
	}
}

// EvalProfiles returns the paper's "9 distinct traffic profiles" style
// grid used for overall accuracy (Table 2): low/default/high values per
// attribute, varied one axis at a time around the default.
func EvalProfiles() []Profile {
	return []Profile{
		Default,
		{Flows: 4000, PktSize: 1500, MTBR: 600},
		{Flows: 64000, PktSize: 1500, MTBR: 600},
		{Flows: 256000, PktSize: 1500, MTBR: 600},
		{Flows: 16000, PktSize: 256, MTBR: 600},
		{Flows: 16000, PktSize: 512, MTBR: 600},
		{Flows: 16000, PktSize: 1024, MTBR: 600},
		{Flows: 16000, PktSize: 1500, MTBR: 80},
		{Flows: 16000, PktSize: 1500, MTBR: 1000},
	}
}

// FullGrid enumerates the full-profiling grid the paper quotes for the
// 3200× cost comparison: nSizes packet sizes × nFlows flow counts.
// The returned profiles keep the default MTBR.
func FullGrid(nSizes, nFlows int) []Profile {
	sl, sh := AttrPktSize.Bounds()
	fl, fh := AttrFlows.Bounds()
	grid := make([]Profile, 0, nSizes*nFlows)
	for i := 0; i < nSizes; i++ {
		size := sl + (sh-sl)*float64(i)/float64(max(nSizes-1, 1))
		for j := 0; j < nFlows; j++ {
			flows := fl + (fh-fl)*float64(j)/float64(max(nFlows-1, 1))
			grid = append(grid, Profile{
				Flows:   int(flows),
				PktSize: int(size),
				MTBR:    Default.MTBR,
			})
		}
	}
	return grid
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
