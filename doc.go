// Package repro is a from-scratch Go reproduction of "Performance
// Prediction of On-NIC Network Functions with Multi-Resource Contention
// and Traffic Awareness" (ASPLOS 2025): the Yala prediction framework,
// the network functions it models, and a simulated SoC SmartNIC standing
// in for the paper's BlueField-2 testbed.
//
// Prediction engines are pluggable: internal/backend defines the
// Backend interface (Train/Predict/Save/Load over an opaque Model
// handle) with self-registration, the built-in yala and slomo
// implementations, and an optional batched fast path; the model
// registry, HTTP layer, placement simulator and fleet scheduler consume
// predictions only through it. The serving subsystem exposes a
// versioned, resource-oriented /v2 HTTP API (hardware-qualified model
// resources, structured error envelopes, paginated listings) with the
// flat /v1 endpoints kept as deprecated byte-compatible adapters, and
// pkg/yalaclient is the supported stdlib-only Go SDK for it.
// internal/gateway scales the serving tier out: `yala gateway` shards
// /v2 traffic across N serve replicas by rendezvous hashing on
// (NF, hardware class, backend), with health-checked transparent
// failover, reload fan-out (plus replay for replicas that were down),
// batch scatter/gather, and an edge response cache; BENCH_gateway.json
// records the measured curve and the host's transport floor.
//
// See README.md for the package map, CLI entry points, the online
// prediction-serving subsystem (internal/serve) and the cluster-scale
// fleet orchestrator (internal/cluster), which schedules churning NF
// lifecycles across fleets that mix hardware classes (BlueField-2 and
// Pensando presets, per-class model sets through the hardware-keyed
// model registry) under pluggable, prediction-guided placement policies
// whose hot path scores all (NIC, class) slots through one batched
// feasibility pass. Workload streams come from pluggable generators
// (churn, diurnal, flashcrowd, heavytail) and can be frozen to
// versioned JSONL traces and replayed bit-identically (internal/trace);
// the committed golden trace plus expected per-policy reports, and the
// BENCH_cluster.json scheduler baseline, gate determinism and hot-path
// regressions in CI. The benchmarks in bench_test.go regenerate each of
// the paper's experiments.
package repro
