package yalaclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultBackend is the backend used when a call names none.
const DefaultBackend = "yala"

// ModelID names one model resource: an NF, optionally qualified by a
// fleet hardware class. The zero HW selects the server's default NIC.
type ModelID struct {
	NF string
	HW string
}

// String renders the /v2 resource name: "nf" or "nf@hw".
func (m ModelID) String() string {
	if m.HW == "" {
		return m.NF
	}
	return m.NF + "@" + m.HW
}

// APIError is a structured error returned by the server's /v2 envelope.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	RequestID  string
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.StatusCode)
	}
	if e.Code != "" {
		return fmt.Sprintf("yalaclient: %s: %s", e.Code, msg)
	}
	return fmt.Sprintf("yalaclient: HTTP %d: %s", e.StatusCode, msg)
}

// RateLimitError is the typed form of a 429 refusal from a
// multi-tenant server or gateway: the structured envelope plus the
// parsed Retry-After hint. RetryAfter is 0 when the server sent none.
type RateLimitError struct {
	APIError
	RetryAfter time.Duration
}

// Client is a typed client for the yala serve /v2 HTTP API.
type Client struct {
	base    string
	httpc   *http.Client
	apiKey  string
	timeout time.Duration
	retries int
	backoff time.Duration

	// Wire transport state (WithWire): the binary fast path for Predict
	// and PredictBatch, with transparent HTTP fallback. wireRetryAt
	// parks the wire path for a grace period after a transport failure
	// so a dead listener costs one failed dial, not one per request.
	wireAddr    string
	wire        *wirePool
	wireRetryAt atomic.Int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client entirely (custom
// transport, proxies, instrumentation).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithAPIKey authenticates every request as a tenant: the key is sent
// as an Authorization: Bearer header, which a multi-tenant server or
// gateway resolves to the tenant's rate limits and accounting. Without
// a key, requests run as the server's anonymous tenant (or are refused
// with 401 where a key is required).
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = strings.TrimSpace(key) }
}

// WithTimeout bounds each request round trip. The default is no
// timeout — prediction misses can legitimately take a while on a cold
// server — so latency-sensitive callers should set one. Order-safe with
// WithHTTPClient: the timeout is applied after all options resolve, to
// a private copy, never to a caller-owned http.Client.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetries retries transport failures and 5xx responses up to n
// times with exponential backoff. The default is 0: load generation and
// benchmarking must observe every failure, so retrying is opt-in.
// Retries respect idempotency: every call except Reload repeats freely,
// while Reload — the one mutating custom method — retries only dial
// failures, where the request provably never reached the server.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithRetryBackoff sets the initial retry backoff (default 100ms,
// doubling per attempt). Only meaningful with WithRetries.
func WithRetryBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// WithWire routes Predict and PredictBatch over the server's yalawire
// binary listener at addr (host:port — the address `yala serve -wire`
// printed, advertised as wire_addr in /v2/stats). The wire path keeps
// the client's typed errors (*APIError, *RateLimitError) and retry
// rules: a transport failure — dial refused, connection dropped,
// protocol damage — falls back to HTTP transparently for that call,
// and a retryable wire refusal (5xx, 429) with a WithRetries budget
// re-issues over HTTP so the standard backoff/Retry-After schedule
// applies. All other calls use HTTP regardless.
func WithWire(addr string) Option {
	return func(c *Client) { c.wireAddr = strings.TrimSpace(addr) }
}

// New returns a client for a server base URL (e.g.
// "http://localhost:8844"). The default transport keeps enough idle
// connections per host for load-generation fan-out — net/http's default
// of 2 makes every worker beyond the second re-handshake per request.
func New(base string, opts ...Option) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		httpc:   &http.Client{Transport: tr},
		backoff: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.timeout > 0 {
		// Shallow-copy before setting the timeout so a caller-supplied
		// shared http.Client is never mutated.
		hc := *c.httpc
		hc.Timeout = c.timeout
		c.httpc = &hc
	}
	if c.wireAddr != "" {
		// Built after all options resolve so the pool handshakes with
		// the final API key regardless of option order.
		c.wire = newWirePool(c.wireAddr, c.apiKey)
	}
	return c
}

// Close releases the wire transport's pooled connections. A client
// built without WithWire holds nothing that needs closing.
func (c *Client) Close() {
	if c.wire != nil {
		c.wire.Close()
	}
}

// do round-trips one idempotent call: marshal, retry loop, envelope
// decoding. Every API call except Reload goes through here — reads and
// deterministic computations answer identically on a duplicate
// delivery, so retrying an ambiguous failure is always safe.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.call(ctx, method, path, in, out, true)
}

// doNonIdempotent is the retry-averse variant for mutating custom
// methods (:reload). An ambiguous failure — a transport error after the
// request may have reached the server, or any HTTP response at all — is
// returned instead of retried: re-sending could apply the mutation
// twice, and behind a scale-out gateway a :reload re-triggers a whole
// fan-out. Only provably-unsent requests (dial failures: the connection
// never opened) retry.
func (c *Client) doNonIdempotent(ctx context.Context, method, path string, in, out any) error {
	return c.call(ctx, method, path, in, out, false)
}

// call is the shared retry loop. Context cancellation is honored both
// between attempts (the backoff select) and across an attempt that
// failed because the context expired mid-flight — a canceled caller
// must never be held hostage by the remaining retry budget.
func (c *Client) call(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("yalaclient: encoding %s request: %w", path, err)
		}
	}
	backoff := c.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, status, hdr, err := c.roundTrip(ctx, method, path, body)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				// The round trip failed because the caller gave up;
				// surface that, not a transport-flavored wrapper.
				return ctx.Err()
			}
			lastErr = fmt.Errorf("yalaclient: %s %s: %w", method, path, err)
			if !idempotent && !dialError(err) {
				// Ambiguous: the request may have been delivered and
				// acted on before the connection died.
				return lastErr
			}
		case status >= 500:
			lastErr = apiError(status, data)
			if !idempotent {
				// The server (or an intermediary) saw the request; a 5xx
				// does not prove the mutation was not applied.
				return lastErr
			}
		case status == http.StatusTooManyRequests:
			// A 429 proves the request was refused before any work — the
			// admission gate sheds ahead of the handler — so retrying is
			// safe even for Reload. The wait honors the server's
			// Retry-After (capped), falling back to the backoff schedule,
			// and fails fast when the caller's deadline cannot cover it:
			// sleeping into a guaranteed DeadlineExceeded would discard
			// the structured refusal the caller can actually act on.
			rle := rateLimitError(status, data, hdr)
			if attempt >= c.retries {
				return rle
			}
			wait := rle.RetryAfter
			if wait <= 0 {
				wait = backoff
			}
			if wait > maxRetryAfterWait {
				wait = maxRetryAfterWait
			}
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) < wait {
				return rle
			}
			select {
			case <-time.After(wait):
				backoff *= 2
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		case status >= 400:
			return apiError(status, data)
		default:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("yalaclient: decoding %s response: %w", path, err)
			}
			return nil
		}
		if attempt >= c.retries {
			return lastErr
		}
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// dialError reports a transport failure that provably happened before
// the request left the client — the connection never opened — making a
// retry safe even for non-idempotent calls.
func dialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// maxRetryAfterWait caps how long the retry loop honors a server's
// Retry-After hint — a hostile or misconfigured server must not be able
// to park a client for minutes with one header.
const maxRetryAfterWait = 10 * time.Second

// maxResponseBytes caps how much of a response body the client will
// buffer, mirroring the server's request-side cap: a misbehaving or
// hostile endpoint must not be able to OOM the SDK with one response.
const maxResponseBytes = 10 << 20

// ErrResponseTooLarge reports a response body that exceeded
// maxResponseBytes. The read stops at the cap; nothing oversized is
// retained.
var ErrResponseTooLarge = fmt.Errorf("yalaclient: response body exceeds %d-byte cap", maxResponseBytes)

// roundTrip performs one HTTP exchange and reads the response, bounded
// by maxResponseBytes.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) ([]byte, int, http.Header, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, 0, nil, err
	}
	if len(data) > maxResponseBytes {
		return nil, 0, nil, ErrResponseTooLarge
	}
	return data, resp.StatusCode, resp.Header, nil
}

// apiError decodes the /v2 error envelope (falling back to the flat /v1
// shape and then the raw status).
func apiError(status int, data []byte) error {
	var v2 struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if json.Unmarshal(data, &v2) == nil && v2.Error.Message != "" {
		return &APIError{StatusCode: status, Code: v2.Error.Code, Message: v2.Error.Message, RequestID: v2.Error.RequestID}
	}
	var v1 struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &v1) == nil && v1.Error != "" {
		return &APIError{StatusCode: status, Message: v1.Error}
	}
	return &APIError{StatusCode: status}
}

// rateLimitError builds the typed 429 error, parsing the Retry-After
// header (delta-seconds or HTTP-date; unparseable or absent → 0).
func rateLimitError(status int, data []byte, hdr http.Header) *RateLimitError {
	e := &RateLimitError{RetryAfter: parseRetryAfter(hdr.Get("Retry-After"))}
	var base *APIError
	if errors.As(apiError(status, data), &base) {
		e.APIError = *base
	}
	return e
}

// parseRetryAfter decodes a Retry-After header value. Both RFC 9110
// forms are accepted; negatives clamp to 0.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			secs = 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// modelPath renders a backend-scoped custom-method path.
func modelPath(m ModelID, backendName, verb string) string {
	if backendName == "" {
		backendName = DefaultBackend
	}
	return "/v2/models/" + url.PathEscape(m.String()) + "/" + url.PathEscape(backendName) + ":" + verb
}

// Predict estimates the model's throughput for one scenario via the
// named backend ("" = DefaultBackend). With WithWire configured the
// exchange runs over the binary wire transport, falling back to HTTP
// transparently on any transport failure.
func (c *Client) Predict(ctx context.Context, m ModelID, backendName string, p PredictParams) (PredictResult, error) {
	if c.wireReady() {
		out, err := c.wirePredict(ctx, m, backendName, p)
		if !c.wireFallback(err) {
			return out, err
		}
	}
	var out PredictResult
	err := c.do(ctx, http.MethodPost, modelPath(m, backendName, "predict"), p, &out)
	return out, err
}

// PredictBatch evaluates many scenarios in one round trip. Like
// Predict, it prefers the wire transport when WithWire is configured.
func (c *Client) PredictBatch(ctx context.Context, items []BatchItem) (BatchResult, error) {
	if c.wireReady() {
		out, err := c.wirePredictBatch(ctx, items)
		if !c.wireFallback(err) {
			return out, err
		}
	}
	return c.httpPredictBatch(ctx, items)
}

// httpPredictBatch is the JSON round trip behind PredictBatch.
func (c *Client) httpPredictBatch(ctx context.Context, items []BatchItem) (BatchResult, error) {
	wire := struct {
		Requests []batchItemWire `json:"requests"`
	}{Requests: make([]batchItemWire, len(items))}
	for i, it := range items {
		wire.Requests[i] = batchItemWire{
			Model:       it.Model.String(),
			Backend:     it.Backend,
			Profile:     it.Profile,
			Competitors: it.Competitors,
		}
	}
	var out BatchResult
	err := c.do(ctx, http.MethodPost, "/v2/models:batchPredict", wire, &out)
	return out, err
}

// Ingest reports one ground-truth measurement into the server's
// online-feedback loop.
func (c *Client) Ingest(ctx context.Context, m Measurement) (IngestResult, error) {
	return c.IngestBatch(ctx, []Measurement{m})
}

// IngestBatch reports many ground-truth measurements in one round
// trip. Ingestion is idempotent in aggregate terms — the server's
// feedback windows are bounded rings, so a retried batch merely
// re-observes — which makes the standard retry schedule safe; with
// WithWire configured the exchange rides the binary transport,
// falling back to HTTP transparently.
func (c *Client) IngestBatch(ctx context.Context, items []Measurement) (IngestResult, error) {
	body := struct {
		Measurements []measurementWire `json:"measurements"`
	}{Measurements: make([]measurementWire, len(items))}
	for i, it := range items {
		body.Measurements[i] = measurementWire{
			Model:       it.Model.String(),
			Backend:     it.Backend,
			Profile:     it.Profile,
			Competitors: it.Competitors,
			MeasuredPPS: it.MeasuredPPS,
			Source:      it.Source,
		}
	}
	if c.wireReady() {
		out, err := c.wireIngest(ctx, body)
		if !c.wireFallback(err) {
			return out, err
		}
	}
	var out IngestResult
	err := c.do(ctx, http.MethodPost, "/v2/ingest", body, &out)
	return out, err
}

// Compare runs Yala and the SLOMO baseline on the same scenario.
func (c *Client) Compare(ctx context.Context, m ModelID, p CompareParams) (CompareResult, error) {
	var out CompareResult
	err := c.do(ctx, http.MethodPost, "/v2/models/"+url.PathEscape(m.String())+":compare", p, &out)
	return out, err
}

// Admit asks whether the model's NF can join the residents without
// breaking any SLA, per the named backend's predictions.
func (c *Client) Admit(ctx context.Context, m ModelID, backendName string, p AdmitParams) (AdmitResult, error) {
	var out AdmitResult
	err := c.do(ctx, http.MethodPost, modelPath(m, backendName, "admit"), p, &out)
	return out, err
}

// Diagnose attributes the scenario's predicted slowdown to a resource.
func (c *Client) Diagnose(ctx context.Context, m ModelID, p PredictParams) (DiagnoseResult, error) {
	var out DiagnoseResult
	err := c.do(ctx, http.MethodPost, "/v2/models/"+url.PathEscape(m.String())+":diagnose", p, &out)
	return out, err
}

// Reload evicts the model from the server's registry so the next
// request re-reads the model directory. Reload is the one mutating
// custom method, so it never retries an ambiguous failure — against a
// gateway it fans out to every replica, and re-sending would re-trigger
// the fan-out (WithRetries still covers dial failures, where the
// request provably never left).
func (c *Client) Reload(ctx context.Context, m ModelID, backendName string) error {
	return c.doNonIdempotent(ctx, http.MethodPost, modelPath(m, backendName, "reload"), nil, nil)
}

// ListModels fetches one page of the server's model listing.
func (c *Client) ListModels(ctx context.Context, p ListModelsParams) (ModelsPage, error) {
	q := url.Values{}
	if p.PageSize > 0 {
		q.Set("page_size", strconv.Itoa(p.PageSize))
	}
	if p.PageToken != "" {
		q.Set("page_token", p.PageToken)
	}
	path := "/v2/models"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out ModelsPage
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// AllModels walks the listing to completion. Page tokens are
// offset-based, so a listing that grows mid-walk (a concurrent request
// lazy-loading a new model) can shift entries across page boundaries;
// treat the result as a snapshot-quality inventory, not a transactional
// one.
func (c *Client) AllModels(ctx context.Context) ([]ModelInfo, error) {
	var all []ModelInfo
	params := ListModelsParams{}
	for {
		page, err := c.ListModels(ctx, params)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Models...)
		if page.NextPageToken == "" {
			return all, nil
		}
		params.PageToken = page.NextPageToken
	}
}

// ClusterRun executes a fleet-orchestration comparison on the server.
func (c *Client) ClusterRun(ctx context.Context, p ClusterRunParams) (ClusterComparison, error) {
	var out ClusterComparison
	err := c.do(ctx, http.MethodPost, "/v2/cluster/runs", p, &out)
	return out, err
}

// ClusterPolicies lists the scheduling policies the server runs.
func (c *Client) ClusterPolicies(ctx context.Context) ([]string, error) {
	var out struct {
		Policies []string `json:"policies"`
	}
	err := c.do(ctx, http.MethodGet, "/v2/cluster/policies", nil, &out)
	return out.Policies, err
}

// Stats snapshots the server's operator counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/v2/stats", nil, &out)
	return out, err
}

// Health probes the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// GatewayStats snapshots a scale-out gateway's routing state: health,
// request distribution and fan-out counters per replica, plus the edge
// cache's counters. Only a yala gateway serves this endpoint — against
// a plain yala serve it returns a not_found APIError, which is also the
// cheap way to ask "is this base URL a gateway?".
func (c *Client) GatewayStats(ctx context.Context) (GatewayStats, error) {
	var out GatewayStats
	err := c.do(ctx, http.MethodGet, "/v2/gateway/stats", nil, &out)
	return out, err
}
