package experiments

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure: an identifier matching the
// paper ("fig4", "table2"), a title, and pre-rendered monospace lines.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// table renders rows with aligned columns.
func (r *Report) table(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	r.Lines = append(r.Lines, line(header))
	sep := make([]string, len(header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	r.Lines = append(r.Lines, line(sep))
	for _, row := range rows {
		r.Lines = append(r.Lines, line(row))
	}
}

// f1 and f0 format floats with one/zero decimals.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// mpps formats a packets/s rate in Mpps.
func mpps(v float64) string { return fmt.Sprintf("%.3f", v/1e6) }
