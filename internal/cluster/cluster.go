// Package cluster is the fleet-scale orchestration layer over the
// prediction stack: it manages tens to hundreds of simulated SmartNICs
// and schedules a continuous, churning stream of NF arrivals, departures
// and traffic-profile drift against them.
//
// The paper's placement use case (§7.5.1) evaluates one NIC-pool and one
// arrival batch at a time; the interesting behavior of a real deployment
// — load skew, churn, rebalancing under drift — only emerges at cluster
// scale. This package supplies that scenario space:
//
//   - Fleet tracks per-NIC resident sets and core budgets, across mixed
//     hardware classes (ClassSpec/NICClass): each class has its own
//     ground-truth simulator, core budget, and per-class model set,
//     loaded through the hardware-keyed ModelSource.
//   - Scenario generates a deterministic lifecycle stream (TenantSpec:
//     arrivals with lifetimes and drift) from a seed under one of several
//     workload generators — exponential churn, diurnal wave, flash-crowd
//     burst, heavy-tail tenant mix — replayed identically against every
//     policy, and recordable/replayable through internal/trace.
//   - Scheduler is the pluggable placement policy: random, first-fit,
//     and prediction-guided best-fit driven by Yala or SLOMO models. The
//     guided policies score all feasible (NIC, class) slots through one
//     batched feasibility pass (placement.FeasibleBatch) with reused
//     feature buffers.
//   - The orchestrator (Env.RunPolicy) replays a stream on sim.Engine,
//     enforces SLAs against simulator ground truth (a placement that
//     immediately breaches an SLA is rolled back), migrates tenants whose
//     drift pushes a NIC out of feasibility, and accounts violations,
//     utilization and decision latency.
//   - Run compares several policies on one shared environment and
//     renders the comparison table `yala cluster` prints; RunStream does
//     the same over an externally supplied (recorded) stream.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/backend"
	"repro/internal/feedback"
	"repro/internal/nicsim"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/testbed"
)

// ModelSource supplies per-NF prediction models to the schedulers, keyed
// by backend and hardware class — the seam between the orchestrator and
// the serving layer. In production serve.ModelRegistry implements it
// (models load once per (backend, class, NF) and are shared by every
// policy in a comparison); tests may supply pre-built maps. The empty
// class is the environment's base hardware.
type ModelSource interface {
	ModelOn(backendName, class string, nic nicsim.Config, name string) (backend.Model, error)
}

// MapModels is a static ModelSource over pre-built model handles, keyed
// backend name → NF name. It is class-agnostic: every hardware class is
// served the same per-NF model (fine for tests, which assert
// orchestration rather than accuracy).
type MapModels map[string]map[string]backend.Model

// ModelOn returns the mapped model, whatever the class.
func (m MapModels) ModelOn(backendName, class string, nic nicsim.Config, name string) (backend.Model, error) {
	if mm, ok := m[backendName][name]; ok {
		return mm, nil
	}
	return nil, fmt.Errorf("cluster: no %s model for %s", backendName, name)
}

// Tenant is one admitted NF instance: the arrival it came from plus the
// stream-unique ID lifecycle events are keyed on.
type Tenant struct {
	ID int
	placement.Arrival
}

// NIC is one fleet member's state: its hardware class, per-NIC core
// budget, and the tenants currently resident on it.
type NIC struct {
	ID int
	// Class names the hardware class ("" = the environment's base
	// preset); Cores is this NIC's core budget (the class preset's,
	// unless the scenario scaled it).
	Class   string
	Cores   int
	Tenants []Tenant

	// key resolves this NIC's class environment (simulator + models).
	key classKey
}

// arrivals projects the resident set into the placement package's form.
func (n *NIC) arrivals() []placement.Arrival {
	out := make([]placement.Arrival, len(n.Tenants))
	for i, t := range n.Tenants {
		out[i] = t.Arrival
	}
	return out
}

// Fleet is the mutable cluster state a scheduler decides over.
type Fleet struct {
	NICs []*NIC
	// NFCores is the per-NF core allocation — mirrored from the
	// placement simulators so scheduler capacity checks and feasibility
	// checks agree. Per-NIC totals live on each NIC (classes differ).
	NFCores int
}

// NewFleet returns an empty homogeneous fleet of n NICs on the
// environment's base hardware class.
func (e *Env) NewFleet(n int) *Fleet {
	f := &Fleet{NFCores: e.Sim.NFCores}
	for i := 0; i < n; i++ {
		f.NICs = append(f.NICs, &NIC{ID: i, Cores: e.Sim.NICCores})
	}
	return f
}

// ScenarioFleet builds the scenario's (possibly heterogeneous) fleet,
// resolving each class's simulator so per-NIC budgets agree with
// feasibility checks.
func (e *Env) ScenarioFleet(sc Scenario) (*Fleet, error) {
	f := &Fleet{NFCores: e.Sim.NFCores}
	for _, slot := range sc.classSlots() {
		ce, err := e.classEnv(slot)
		if err != nil {
			return nil, err
		}
		for i := 0; i < slot.Count; i++ {
			f.NICs = append(f.NICs, &NIC{
				ID:    len(f.NICs),
				Class: slot.Class,
				Cores: ce.sim.NICCores,
				key:   ce.key,
			})
		}
	}
	return f, nil
}

// Fits reports whether NIC i has the core budget for one more NF.
func (f *Fleet) Fits(i int) bool {
	return (len(f.NICs[i].Tenants)+1)*f.NFCores <= f.NICs[i].Cores
}

// FreeCores is NIC i's unallocated core count.
func (f *Fleet) FreeCores(i int) int {
	return f.NICs[i].Cores - len(f.NICs[i].Tenants)*f.NFCores
}

// UsedCores is the fleet-wide allocated core count.
func (f *Fleet) UsedCores() int {
	used := 0
	for _, n := range f.NICs {
		used += len(n.Tenants) * f.NFCores
	}
	return used
}

// TotalCores is the fleet-wide core budget across all classes.
func (f *Fleet) TotalCores() int {
	total := 0
	for _, n := range f.NICs {
		total += n.Cores
	}
	return total
}

// Tenants is the fleet-wide resident count.
func (f *Fleet) Tenants() int {
	total := 0
	for _, n := range f.NICs {
		total += len(n.Tenants)
	}
	return total
}

// place adds a tenant to NIC i.
func (f *Fleet) place(i int, t Tenant) {
	f.NICs[i].Tenants = append(f.NICs[i].Tenants, t)
}

// remove deletes the tenant by ID from NIC i, reporting the removed
// tenant and whether it was resident.
func (f *Fleet) remove(i, id int) (Tenant, bool) {
	n := f.NICs[i]
	for j, t := range n.Tenants {
		if t.ID == id {
			n.Tenants = append(n.Tenants[:j], n.Tenants[j+1:]...)
			return t, true
		}
	}
	return Tenant{}, false
}

// locate finds the NIC hosting tenant id, or -1: lifecycle events may
// outlive their tenant (an SLA eviction beats a scheduled departure).
func (f *Fleet) locate(id int) int {
	for i, n := range f.NICs {
		for _, t := range n.Tenants {
			if t.ID == id {
				return i
			}
		}
	}
	return -1
}

// classKey identifies one class environment: the class name plus any
// core-budget override (two overrides of the same class are distinct
// capacity configurations).
type classKey struct {
	name  string
	cores int
}

// classEnv is one hardware class's slice of the environment: its
// preset, its ground-truth/feasibility simulator (with per-class
// solo/co-run caches), and its per-class model set inside the simulator.
type classEnv struct {
	key classKey
	cfg nicsim.Config
	sim *placement.Simulator
}

// Env binds the shared pieces one comparison run needs: per-class
// placement simulators (ground truth plus prediction-side feasibility,
// with their solo/co-run measurement caches) and the hardware-keyed
// model source. Sharing one Env across policies evaluates every policy
// against identical cached measurements and loads each (class, NF) model
// exactly once.
type Env struct {
	// Sim is the base-class simulator — the one a homogeneous default
	// fleet runs on. Exposed so callers and tests can seed caches or
	// adjust core budgets.
	Sim    *placement.Simulator
	Models ModelSource

	// Feedback optionally tunes the online loop's drift gate (window
	// size, warmup floor, promotion evidence). Train, Promote and
	// Synchronous are owned by the orchestrator and overwritten; nil
	// selects cluster-scale defaults.
	Feedback *feedback.Config
	// TrainOptions optionally supplies backend-specific training options
	// for online-mode retraining (nil selects each backend's quick
	// default). Tests and benches pass minimal-cost configurations here.
	TrainOptions func(backendName string) any

	base  nicsim.Config
	seed  uint64
	class map[classKey]*classEnv
	// shift caches the post-shift ground-truth environments: one
	// frequency-scaled simulator per (class, scale), shared by every
	// policy run on this Env so shifted co-run measurements are taken
	// once.
	shift map[shiftKey]*classEnv

	// obsReg, when installed via SetObs, receives scheduler telemetry:
	// per-policy decision-latency histograms and candidate-slot counters
	// — the signal that makes decision cost attributable per policy
	// (and, with the slots-scanned counter, provable as O(changed
	// slots) rather than O(fleet)). Nil keeps the scheduler free of any
	// metric overhead for library callers.
	obsReg *obs.Registry
}

// NewEnv builds an environment on a fresh testbed at the given NIC
// preset and seed.
func NewEnv(cfg nicsim.Config, seed uint64, models ModelSource) *Env {
	e := &Env{
		Models: models,
		base:   cfg,
		seed:   seed,
		class:  map[classKey]*classEnv{},
		shift:  map[shiftKey]*classEnv{},
	}
	base := &classEnv{
		key: classKey{},
		cfg: cfg,
		sim: placement.NewSimulator(testbed.New(cfg, seed)),
	}
	e.class[base.key] = base
	e.Sim = base.sim
	return e
}

// SetObs installs a metric registry for scheduler telemetry. The serve
// layer passes its own registry so cluster_* series appear in the
// server's /metrics exposition; nil (the default) disables recording.
func (e *Env) SetObs(r *obs.Registry) { e.obsReg = r }

// observeDecision records one scheduling decision's wall-clock latency
// under the policy's cluster_decision_seconds series.
func (e *Env) observeDecision(policy string, d time.Duration) {
	if e.obsReg == nil {
		return
	}
	e.obsReg.Histogram("cluster_decision_seconds", nil, "policy", policy).Observe(d.Seconds())
}

// countSlots records one decision's candidate-slot work: scanned is
// every NIC examined, scored the subset that went through a predictor
// feasibility check.
func (e *Env) countSlots(policy string, scanned, scored int) {
	if e.obsReg == nil {
		return
	}
	e.obsReg.Counter("cluster_slots_scanned_total", "policy", policy).Add(uint64(scanned))
	e.obsReg.Counter("cluster_slots_scored_total", "policy", policy).Add(uint64(scored))
}

// sortedClassKeys returns every class environment's key ordered by
// (name, cores) — the deterministic way to walk e.class, which replay
// determinism forbids ranging over directly.
func (e *Env) sortedClassKeys() []classKey {
	keys := make([]classKey, 0, len(e.class))
	for key := range e.class {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].cores < keys[j].cores
	})
	return keys
}

// classEnv resolves (building on first use) the environment slice for
// one class spec.
func (e *Env) classEnv(spec ClassSpec) (*classEnv, error) {
	key := classKey{name: spec.Class, cores: spec.Cores}
	if ce, ok := e.class[key]; ok {
		return ce, nil
	}
	cfg := e.base
	if spec.Class != "" {
		var err error
		cfg, err = ClassConfig(spec.Class)
		if err != nil {
			return nil, err
		}
	}
	sim := placement.NewSimulator(testbed.New(cfg, e.seed))
	// Capacity scaling adjusts the scheduling budget only; ground truth
	// and models stay on the stock preset.
	if spec.Cores > 0 {
		sim.NICCores = spec.Cores
	}
	// Per-NF allocation is fleet-wide; keep every class consistent with
	// the base simulator (tests adjust e.Sim.NFCores before running).
	sim.NFCores = e.Sim.NFCores
	ce := &classEnv{key: key, cfg: cfg, sim: sim}
	e.class[key] = ce
	return ce, nil
}

// simFor returns the simulator governing one fleet NIC.
func (e *Env) simFor(n *NIC) *placement.Simulator {
	if ce, ok := e.class[n.key]; ok {
		return ce.sim
	}
	return e.Sim
}

// shiftKey identifies one post-shift ground-truth environment: the
// class it shifted from plus the frequency factor applied.
type shiftKey struct {
	class classKey
	scale float64
}

// shiftedEnv resolves (building on first use) the post-shift
// ground-truth environment for one class: the class's hardware preset
// under a DVFS governor at scale times its nominal frequency, with its
// own solo/co-run caches. Enforcement consults it after the scenario's
// shift time; the prediction-side class simulator is untouched — that
// gap is exactly what the online feedback loop has to close.
func (e *Env) shiftedEnv(key classKey, scale float64) *classEnv {
	sk := shiftKey{class: key, scale: scale}
	if ce, ok := e.shift[sk]; ok {
		return ce
	}
	base, ok := e.class[key]
	if !ok {
		base = e.class[classKey{}]
	}
	f := base.cfg.FreqScale
	if f <= 0 {
		f = 1
	}
	cfg := base.cfg.WithFrequencyScale(f * scale)
	sim := placement.NewSimulator(testbed.New(cfg, e.seed))
	sim.NICCores = base.sim.NICCores
	sim.NFCores = base.sim.NFCores
	ce := &classEnv{key: key, cfg: cfg, sim: sim}
	e.shift[sk] = ce
	return ce
}

// fresh clones the environment's immutable configuration into a new Env
// with empty caches and model sets. Online-mode runs mutate per-class
// model sets and solo baselines (that is the point of promotion), so a
// comparison gives each policy a fresh clone rather than sharing one
// contaminated environment.
func (e *Env) fresh() *Env {
	ne := NewEnv(e.base, e.seed, e.Models)
	ne.Sim.NFCores = e.Sim.NFCores
	ne.Sim.NICCores = e.Sim.NICCores
	ne.Feedback = e.Feedback
	ne.TrainOptions = e.TrainOptions
	ne.obsReg = e.obsReg
	return ne
}

// ensureModels pulls the named NFs' models for the strategy's backend
// from the model source into a class's simulator, once per (backend,
// class, name). Model-free strategies are a no-op.
func (e *Env) ensureModels(ce *classEnv, strat placement.Strategy, names []string) error {
	bname := strat.Backend()
	if bname == "" {
		return nil
	}
	for _, name := range names {
		if ce.sim.HasModel(bname, name) {
			continue
		}
		m, err := e.Models.ModelOn(bname, ce.key.name, ce.cfg, name)
		if err != nil {
			return err
		}
		ce.sim.SetModel(bname, name, m)
	}
	return nil
}

// Prewarm loads every model the named policies will consult — per
// hardware class — and seeds each class simulator's solo-measurement
// cache for the scenario's (NF, profile) pool. Decisions during the run
// then measure scheduling, not lazy model training or first-touch
// measurements — and every policy starts from identical cache state. The
// context cancels the warm-up between models and measurements.
func (e *Env) Prewarm(ctx context.Context, sc Scenario, policies []string) error {
	sc = sc.WithDefaults()
	for _, slot := range sc.classSlots() {
		ce, err := e.classEnv(slot)
		if err != nil {
			return err
		}
		for _, p := range policies {
			if err := ctx.Err(); err != nil {
				return err
			}
			if strat, ok := policyStrategy(p); ok {
				if err := e.ensureModels(ce, strat, sc.NFs); err != nil {
					return err
				}
			}
		}
		for _, name := range sc.NFs {
			for _, prof := range sc.ProfilePool() {
				if err := ctx.Err(); err != nil {
					return err
				}
				a := placement.Arrival{Name: name, Profile: prof}
				m, err := ce.sim.TB.SoloNF(name, prof)
				if err != nil {
					return err
				}
				ce.sim.SeedSolo(a, m)
			}
		}
	}
	return nil
}

// feasible is the per-slot prediction-guided admission check: load the
// models involved, then ask placement.Feasible whether adding a to the
// resident set keeps every SLA intact per the strategy's predictor on
// the NIC's class simulator. The batched scheduler path supersedes it on
// the hot path; it remains the reference implementation (and the
// benchmark baseline).
func (e *Env) feasible(ce *classEnv, residents []placement.Arrival, a placement.Arrival, strat placement.Strategy) (bool, error) {
	names := make([]string, 0, len(residents)+1)
	names = append(names, a.Name)
	for _, r := range residents {
		names = append(names, r.Name)
	}
	if err := e.ensureModels(ce, strat, names); err != nil {
		return false, err
	}
	return ce.sim.Feasible(residents, a, strat)
}

// feasibleBatch scores adding a to every candidate resident set on one
// class through placement.FeasibleBatch, loading the models involved
// once for the whole batch.
func (e *Env) feasibleBatch(ce *classEnv, sets [][]placement.Arrival, a placement.Arrival, strat placement.Strategy) ([]bool, error) {
	names := make([]string, 0, 8)
	names = append(names, a.Name)
	for _, set := range sets {
		for _, r := range set {
			names = append(names, r.Name)
		}
	}
	if err := e.ensureModels(ce, strat, names); err != nil {
		return nil, err
	}
	return ce.sim.FeasibleBatch(sets, a, strat)
}
