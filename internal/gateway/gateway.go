// Package gateway is the scale-out front end for the prediction-serving
// subsystem: a thin coordinator that routes /v2 traffic across N
// interchangeable serve replicas and survives replica failure — the
// cluster-head shape the related clustered-systems work converges on,
// applied to the serving tier itself.
//
// Routing is rendezvous hashing on (NF, hardware class, backend), so
// every scenario for one model keeps landing on the same replica and
// that replica's LRU stays hot for its key range; when a replica is
// marked down — by the active health loop (pkg/yalaclient probes) or
// passively by a transport failure mid-proxy — the same ranking yields
// the next-best replica, which is exactly consistent-hashing failover:
// only the dead replica's key range moves. Every proxied verb is
// idempotent (predictions are deterministic), so a transport failure
// retries transparently on the next replica in rank order and clients
// see zero errors across a replica kill.
//
// Mutating custom methods (:reload, /v1/reload) fan out to every
// replica so no replica serves a stale model; a replica that misses a
// fan-out while down has the reload queued and replayed by the health
// loop when it recovers, so it never rejoins stale. :batchPredict
// scatters its elements to their home replicas in per-replica
// sub-batches and gathers the responses back in request order.
//
// The gateway also keeps an edge response cache (the same sharded LRU
// the replicas use): deterministic 200s for the model-scoped custom
// methods are memoized as raw bytes keyed on (path, body), which takes
// the whole JSON decode/validate/encode pipeline off the warm path.
// Reload fan-outs evict affected edge entries conservatively (any entry
// naming the NF), mirroring the replicas' own targeted eviction.
//
// Telemetry spans the hop: the gateway adopts or mints an X-Request-Id
// and forwards it upstream so one ID names a request at the client, the
// gateway and the replica; GET /metrics serves the gateway's own
// gateway_* series (routing counters, per-replica health and upstream
// latency, edge-cache state) followed by the fleet-merged replica
// exposition — counters sum, uptime reports the oldest replica's.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tenant"
	"repro/internal/wire"
	"repro/pkg/yalaclient"
)

// Request and edge-cache size bounds, matching the serve layer's own
// body cap.
const (
	maxBodyBytes      = 10 << 20
	maxEdgeEntryBytes = 1 << 20
)

// Config shapes a Gateway.
type Config struct {
	// Backends are the replica base URLs traffic shards across.
	Backends []string
	// Slots sizes the hash ring: len(Backends) (the default) for a
	// static fleet, larger to leave vacant slots an autoscaler can
	// Attach replicas into later. Keys hash against slot indices, so a
	// ring sized for the maximum fleet keeps key→slot assignment stable
	// as replicas come and go.
	Slots int
	// Gate, when set, mounts the multi-tenant admission gate on the
	// gateway surface: API-key auth, per-tenant rate limits, and load
	// shedding before any fan-out (see internal/tenant).
	Gate *tenant.Gate
	// HealthInterval is the active probe period (default 500ms);
	// HealthTimeout bounds one probe or pending-reload replay (default
	// 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EdgeCacheEntries sizes the gateway's response cache: 0 selects the
	// default 8192, negative disables edge caching entirely.
	EdgeCacheEntries int
	// Client optionally replaces the forwarding HTTP client (tests,
	// instrumentation). The default keeps a deep idle-connection pool
	// per replica, like the SDK's.
	Client *http.Client
	// AccessLog emits one log line per gateway request (request ID,
	// method, path, status, latency).
	AccessLog bool
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.EdgeCacheEntries == 0 {
		c.EdgeCacheEntries = 8192
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 256
		c.Client = &http.Client{Transport: tr}
	}
	return c
}

// replica is one slot in the gateway's hash ring. The slot is the
// stable identity keys hash against; which backend (if any) currently
// occupies it lives in the atomically-swapped endpoint (membership.go),
// so an autoscaler can attach and detach backends without reshuffling
// any other slot's key range.
type replica struct {
	slot int // ring position — the hash identity

	// ep is the current attachment; nil marks the slot vacant (skipped
	// by routing, fan-outs queue on pending instead of dialing).
	ep atomic.Pointer[endpoint]

	healthy atomic.Bool

	// pending holds reload fan-outs this slot missed while its backend
	// was down or the slot vacant, keyed "backend|nf"; the health loop
	// (or the next Attach) replays them so a rejoining replica never
	// serves a stale model. The seq guards replay-vs-new-failure races:
	// a drain only clears the entry it actually replayed.
	mu      sync.Mutex
	pending map[string]pendingReload
}

type pendingReload struct {
	backend, nf string
	seq         uint64
}

// Gateway routes /v2 (and compatibility /v1) traffic across replicas.
type Gateway struct {
	cfg      Config
	replicas []*replica
	httpc    *http.Client
	edge     *serve.Cache

	requests   atomic.Uint64
	retries    atomic.Uint64
	fanouts    atomic.Uint64
	coalesced  atomic.Uint64
	canceled   atomic.Uint64
	pendingSeq atomic.Uint64
	ridCounter atomic.Uint64
	inflight   atomic.Int64

	// flight coalesces concurrent identical cacheable requests: while one
	// leader proxies (method, URI, body) upstream, followers with the same
	// tuple wait for its answer instead of dialing the replica themselves.
	// The deterministic verbs this applies to make sharing safe, and the
	// edge cache only helps after a response lands — coalescing is what
	// keeps a thundering herd on a cold key down to one upstream call.
	flight serve.FlightGroup[string, proxyResult]

	obs        *obs.Registry
	reqSeconds *obs.Histogram

	// reloadGen counts edge-cache invalidations. A proxied miss records
	// the generation before its replica round trip and re-checks it
	// around the Put: without that, a response computed against the
	// pre-reload model could be inserted just after a concurrent
	// fan-out's eviction swept the cache, and would then serve stale
	// forever.
	reloadGen atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New starts a gateway over the configured replicas and its health
// loop. Replicas start optimistically healthy — the first probe (or the
// first failed proxy) corrects that — so a gateway booted before its
// replicas converges instead of blackholing. Call Close to stop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: need at least one replica backend URL")
	}
	if cfg.Slots < len(cfg.Backends) {
		cfg.Slots = len(cfg.Backends)
	}
	g := &Gateway{
		cfg:   cfg,
		httpc: cfg.Client,
		edge:  serve.NewCache(cfg.EdgeCacheEntries),
		stop:  make(chan struct{}),
	}
	eps := make([]*endpoint, len(cfg.Backends))
	for i, u := range cfg.Backends {
		// A phantom empty-URL replica would boot optimistically healthy
		// and then fail every send and probe forever — reject the typo
		// (e.g. a trailing comma) at construction.
		ep, err := newEndpoint(u)
		if err != nil {
			return nil, fmt.Errorf("gateway: backend %d: %w", i, err)
		}
		eps[i] = ep
	}
	for slot := 0; slot < cfg.Slots; slot++ {
		rep := &replica{slot: slot, pending: map[string]pendingReload{}}
		if slot < len(eps) {
			rep.ep.Store(eps[slot])
			rep.healthy.Store(true)
		}
		g.replicas = append(g.replicas, rep)
	}
	g.initObs()
	for _, rep := range g.replicas {
		if ep := rep.ep.Load(); ep != nil {
			g.registerEndpointObs(rep, ep)
		}
	}
	if cfg.Gate != nil {
		// The gate's queue-pressure signal is the gateway's in-flight
		// request count against the attached fleet's nominal capacity;
		// an autoscaler may re-wire this with its own target.
		cfg.Gate.SetQueueFunc(func() float64 {
			active := g.attachedCount()
			if active == 0 {
				return 1
			}
			return float64(g.inflight.Load()) / float64(active*defaultInflightTarget)
		})
		cfg.Gate.SetObs(g.obs)
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// defaultInflightTarget is the per-replica in-flight request count the
// gate's queue signal normalizes against when no autoscaler overrides
// it.
const defaultInflightTarget = 32

// Close stops the health loop and drops the wire upstream pools.
// In-flight proxied requests finish on their own contexts.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	for _, rep := range g.replicas {
		if ep := rep.ep.Load(); ep != nil {
			ep.closeWire()
		}
	}
}

// Replicas lists the attached replica base URLs in slot order.
func (g *Gateway) Replicas() []string {
	var urls []string
	for _, rep := range g.replicas {
		if ep := rep.ep.Load(); ep != nil {
			urls = append(urls, ep.url)
		}
	}
	return urls
}

// healthLoop actively probes every replica and replays missed reload
// fan-outs on recovery. Passive marking (a failed proxy) reacts faster
// than the probe period; this loop is what brings replicas back.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		ep := rep.ep.Load()
		if ep == nil {
			continue // vacant slot: nothing to probe
		}
		wg.Add(1)
		go func(rep *replica, ep *endpoint) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
			defer cancel()
			if err := ep.client.Health(ctx); err != nil {
				rep.healthy.Store(false)
				return
			}
			g.drainPending(rep)
			g.discoverWire(ctx, ep)
			rep.healthy.Store(true)
		}(rep, ep)
	}
	wg.Wait()
}

// discoverWire asks a healthy replica (once per attachment, re-armed
// by dropWire) whether it advertises a yalawire listener, and builds
// the binary upstream pool when it does. A replica without one simply
// stays on HTTP; a failed stats probe re-arms so a later probe
// retries.
func (g *Gateway) discoverWire(ctx context.Context, ep *endpoint) {
	if ep.wireProbed.Swap(true) {
		return
	}
	st, err := ep.client.Stats(ctx)
	if err != nil {
		ep.wireProbed.Store(false)
		return
	}
	if st.WireAddr == "" {
		return
	}
	ep.wire.Store(wire.NewPool(st.WireAddr, "", 8))
}

// drainPending replays the reload fan-outs a replica missed while down.
// Server-side reloads are idempotent (drop model, evict entries), so a
// duplicate replay is harmless; an entry clears on success or on a 4xx
// (the reload was invalid everywhere — nothing to catch up on).
func (g *Gateway) drainPending(rep *replica) {
	ep := rep.ep.Load()
	if ep == nil {
		return
	}
	rep.mu.Lock()
	missed := make([]pendingReload, 0, len(rep.pending))
	for _, p := range rep.pending {
		missed = append(missed, p)
	}
	rep.mu.Unlock()
	for _, p := range missed {
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
		err := ep.client.Reload(ctx, yalaclient.ModelID{NF: p.nf}, p.backend)
		cancel()
		var apiErr *yalaclient.APIError
		if err == nil || (errors.As(err, &apiErr) && apiErr.StatusCode < 500) {
			key := p.backend + "|" + p.nf
			rep.mu.Lock()
			if cur, ok := rep.pending[key]; ok && cur.seq == p.seq {
				delete(rep.pending, key)
			}
			rep.mu.Unlock()
		}
	}
}

func (g *Gateway) addPending(rep *replica, backendName, nfName string) {
	rep.mu.Lock()
	rep.pending[backendName+"|"+nfName] = pendingReload{
		backend: backendName,
		nf:      nfName,
		seq:     g.pendingSeq.Add(1),
	}
	rep.mu.Unlock()
}

// hashSlot scores one (key, replica slot) pair for rendezvous ranking.
// Hashing the slot index — not the URL — keeps the key→replica map
// stable across restarts: in-process replicas get fresh ephemeral ports
// every boot, and URL-based hashing would reshuffle every key range
// (cold-starting every replica cache) on each restart.
func hashSlot(key string, slot int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	h.Write([]byte{0, byte(slot), byte(slot >> 8)})
	return h.Sum64()
}

// rankedReplica pairs a slot with the endpoint snapshot routing will
// dial — snapshotted once so a concurrent Detach cannot nil it mid-use.
type rankedReplica struct {
	rep *replica
	ep  *endpoint
}

// rank orders the attached replicas for a routing key: healthy ones in
// rendezvous order (highest score first), then unhealthy ones as a last
// resort — trying a probably-dead replica beats failing outright when
// passive marking lags a recovery. Vacant slots never rank: there is
// nothing to dial. Health and endpoint are snapshotted once so a
// concurrent flip cannot drop a replica from the ordering.
func (g *Gateway) rank(key string) []rankedReplica {
	type scored struct {
		rankedReplica
		healthy bool
		h       uint64
	}
	all := make([]scored, 0, len(g.replicas))
	for _, rep := range g.replicas {
		ep := rep.ep.Load()
		if ep == nil {
			continue
		}
		all = append(all, scored{rankedReplica{rep, ep}, rep.healthy.Load(), hashSlot(key, rep.slot)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].healthy != all[j].healthy {
			return all[i].healthy
		}
		return all[i].h > all[j].h
	})
	out := make([]rankedReplica, len(all))
	for i, s := range all {
		out[i] = s.rankedReplica
	}
	return out
}

// route is one request's routing decision.
type route struct {
	key         string // rendezvous key
	cacheable   bool   // deterministic 200, edge-cacheable
	fanout      bool   // mutating verb: all replicas
	v1Reload    bool   // fan-out target comes from the body
	backend, nf string // fan-out target from the path
}

// classify derives the routing decision from the path alone.
// Model-scoped /v2 traffic hashes on (nf, hw, backend) so one model's
// scenarios keep hitting the replica whose LRU already holds them; the
// model-less verbs (:compare, :diagnose) hash with the default backend,
// which co-locates them with the yala predictions they are assembled
// from. Everything else hashes on the path — which, usefully, keeps a
// paginated /v2/models walk on one replica so its offset tokens stay
// coherent while health holds.
func classify(r *http.Request) route {
	path := r.URL.Path
	if path == "/v1/reload" && r.Method == http.MethodPost {
		return route{fanout: true, v1Reload: true}
	}
	rest, ok := strings.CutPrefix(path, "/v2/models/")
	if !ok {
		return route{key: "path|" + path}
	}
	segs := strings.Split(rest, "/")
	switch len(segs) {
	case 1:
		// /v2/models/{nf[@hw]}:{compare|diagnose}
		id, _, ok := strings.Cut(segs[0], ":")
		if !ok {
			return route{key: "path|" + path}
		}
		nf, hw := splitModelID(id)
		return route{key: modelKey(nf, hw, ""), cacheable: r.Method == http.MethodPost}
	case 2:
		// /v2/models/{nf[@hw]}/{backend}:{predict|admit|reload}
		nf, hw := splitModelID(segs[0])
		backendName, verb, ok := strings.Cut(segs[1], ":")
		if !ok {
			return route{key: "path|" + path}
		}
		// Only a POST :reload mutates; any other method proxies to one
		// replica, whose method-bound route answers 405 — a GET must
		// never fan out across the fleet (or count as a fan-out).
		if verb == "reload" && r.Method == http.MethodPost {
			return route{fanout: true, backend: backendName, nf: nf}
		}
		return route{key: modelKey(nf, hw, backendName), cacheable: r.Method == http.MethodPost}
	}
	return route{key: "path|" + path}
}

// splitModelID cuts a "<nf>[@<hw>]" resource name. Malformed IDs pass
// through as-is — the replica owns validation and its 400 proxies back.
func splitModelID(id string) (nf, hw string) {
	nf, hw, _ = strings.Cut(id, "@")
	return nf, hw
}

// modelKey is the rendezvous key for one (nf, hw, backend) model.
func modelKey(nf, hw, backendName string) string {
	if backendName == "" {
		backendName = yalaclient.DefaultBackend
	}
	return "model|" + nf + "@" + hw + "|" + strings.ToLower(backendName)
}

// Handler exposes the gateway over HTTP. Everything not handled locally
// (health, gateway stats, aggregate stats, batch scatter) proxies to a
// replica chosen by the request's routing key.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /v2/gateway/stats", g.handleGatewayStats)
	mux.HandleFunc("GET /v2/stats", g.handleAggregateStats)
	mux.HandleFunc("POST /v2/models:batchPredict", g.handleBatchScatter)
	mux.HandleFunc("POST /v2/ingest", g.handleIngestScatter)
	mux.HandleFunc("/", g.handleProxy)
	var h http.Handler = mux
	if g.cfg.Gate != nil {
		// The admission gate sits inside withObs — its 429/401 envelopes
		// carry the request ID the trace middleware minted — and outside
		// the routing mux, so shed requests never consume a replica.
		h = g.cfg.Gate.Middleware(h)
	}
	return g.withObs(h)
}

// handleHealthz reports gateway liveness: up while at least one replica
// is healthy — the gateway itself holds no models, so "can serve"
// means "can route".
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for _, rep := range g.replicas {
		if rep.ep.Load() != nil && rep.healthy.Load() {
			w.Write([]byte("ok\n"))
			return
		}
	}
	g.writeError(w, http.StatusServiceUnavailable, "unavailable", "no healthy replica")
}

// edgeEntry is one memoized raw response.
type edgeEntry struct {
	contentType string
	body        []byte
}

// edgeKey keys one deterministic response: the full request URI (which
// carries nf, hw, backend and verb) plus the exact body bytes.
func edgeKey(uri string, body []byte) string {
	return uri + "\x00" + string(body)
}

// proxyResult is one upstream answer, shaped for sharing across
// coalesced requests.
type proxyResult struct {
	replicaURL string
	status     int
	hdr        http.Header
	body       []byte
}

// handleProxy routes one request: fan-outs go everywhere, cacheable
// verbs consult the edge cache and coalesce concurrent identical
// misses down to one upstream call, everything else forwards to the
// ranked replica with transparent failover.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid_argument", "reading request body: "+err.Error())
		return
	}
	rt := classify(r)
	if rt.fanout {
		g.fanoutReload(w, r, rt, body)
		return
	}
	var ekey string
	if rt.cacheable {
		ekey = edgeKey(r.URL.RequestURI(), body)
		if v, ok := g.edge.Get(ekey); ok {
			e := v.(edgeEntry)
			if e.contentType != "" {
				w.Header().Set("Content-Type", e.contentType)
			}
			w.Header().Set("X-Gateway-Cache", "hit")
			w.Write(e.body)
			return
		}
		res, shared, err := g.flight.Coalesce(r.Method+"\x00"+ekey, func() (proxyResult, error) {
			// The leader computes on behalf of every coalesced waiter, so
			// its lifetime must not be bound to its own client: a leader
			// whose client hangs up mid-flight still owes the followers an
			// answer. The upstream round trip is bounded by the replica,
			// not the departed caller.
			return g.proxyOnce(context.WithoutCancel(r.Context()), rt, r, body)
		})
		if err != nil {
			g.writeProxyError(w, r, err)
			return
		}
		if shared {
			g.coalesced.Add(1)
			// Followers reuse the leader's response bytes but keep their
			// own X-Request-Id (already set by withObs) — the leader's rid
			// names the one upstream call, not every waiter.
			if ct := res.hdr.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.Header().Set("X-Gateway-Coalesced", "hit")
			w.Header().Set("X-Gateway-Replica", res.replicaURL)
			w.WriteHeader(res.status)
			w.Write(res.body)
			return
		}
		copyResponseHeaders(w, res.hdr)
		w.Header().Set("X-Gateway-Replica", res.replicaURL)
		w.WriteHeader(res.status)
		w.Write(res.body)
		return
	}
	ep, status, hdr, respBody, err := g.sendWithFailover(r.Context(), rt.key, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		g.writeProxyError(w, r, err)
		return
	}
	copyResponseHeaders(w, hdr)
	w.Header().Set("X-Gateway-Replica", ep.url)
	w.WriteHeader(status)
	w.Write(respBody)
}

// proxyOnce performs one cacheable upstream round trip and memoizes a
// 200 at the edge. It runs once per coalesced group, on the leader.
func (g *Gateway) proxyOnce(ctx context.Context, rt route, r *http.Request, body []byte) (proxyResult, error) {
	ekey := edgeKey(r.URL.RequestURI(), body)
	gen := g.reloadGen.Load()
	ep, status, hdr, respBody, err := g.sendWithFailover(ctx, rt.key, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		return proxyResult{}, err
	}
	if status == http.StatusOK && len(respBody) <= maxEdgeEntryBytes {
		g.edge.Put(ekey, edgeEntry{contentType: hdr.Get("Content-Type"), body: respBody})
		// A reload fan-out may have swept the cache while this response
		// was in flight — the response could predate the reload. The
		// eviction bumps reloadGen before scanning, so either the sweep
		// saw this entry, or the generation moved and the entry removes
		// itself here. Over-removal only costs a re-proxy.
		if g.reloadGen.Load() != gen {
			g.edge.EvictMatching(func(k string) bool { return k == ekey })
		}
	}
	return proxyResult{replicaURL: ep.url, status: status, hdr: hdr, body: respBody}, nil
}

// writeProxyError renders an upstream failure. A request whose own
// client already gave up answers 499 (client closed request) instead
// of 503: the failure is the caller's departure, not fleet overload,
// and the tenant gate's shed signal must not see a canceled flood as
// server errors (the 499 is excluded from its windowed error rate).
func (g *Gateway) writeProxyError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		g.writeError(w, tenant.StatusClientClosedRequest, "canceled", "client canceled request: "+err.Error())
		return
	}
	g.writeError(w, http.StatusServiceUnavailable, "unavailable", fmt.Sprintf("no replica answered: %v", err))
}

// copyResponseHeaders forwards the replica headers clients key on; hop
// metadata stays behind.
func copyResponseHeaders(w http.ResponseWriter, hdr http.Header) {
	for _, k := range []string{"Content-Type", "X-Request-Id", "Deprecation", "Link", "Allow"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

// sendWithFailover tries the key's replicas in rank order. A transport
// failure marks the replica down and moves on — every verb routed here
// is idempotent (predictions are deterministic; reloads fan out
// elsewhere), so a retry after an ambiguous failure is safe. HTTP error
// statuses are replica answers, not failures: they proxy back as-is.
func (g *Gateway) sendWithFailover(ctx context.Context, key, method, uri, contentType string, body []byte) (*endpoint, int, http.Header, []byte, error) {
	ranked := g.rank(key)
	if len(ranked) == 0 {
		return nil, 0, nil, nil, fmt.Errorf("no replica attached")
	}
	var lastErr error
	for i, rr := range ranked {
		if i > 0 {
			g.retries.Add(1)
		}
		status, hdr, respBody, err := g.send(ctx, rr.ep, method, uri, contentType, body)
		if err != nil {
			lastErr = err
			rr.ep.errors.Add(1)
			if ctx.Err() != nil {
				// The client gave up; stop burning replicas (and do not
				// mark them down for our caller's impatience).
				return nil, 0, nil, nil, lastErr
			}
			rr.rep.healthy.Store(false)
			continue
		}
		rr.ep.requests.Add(1)
		return rr.ep, status, hdr, respBody, nil
	}
	return nil, 0, nil, nil, lastErr
}

// errUpstreamTooLarge reports a replica response that exceeded the
// gateway's buffering cap. It surfaces as a transport-class failure —
// the replica is misbehaving, so failover marks it down and moves on —
// rather than proxying an unbounded body through the gateway's memory.
var errUpstreamTooLarge = fmt.Errorf("gateway: upstream response exceeds %d-byte cap", maxBodyBytes)

// send performs one proxied exchange and slurps the response, bounded
// by maxBodyBytes (mirroring the request-side cap — a replica must not
// be able to balloon the gateway's memory with one response). When the
// endpoint advertised a wire listener the exchange rides a persistent
// binary frame; any wire transport failure drops the pool and falls
// back to HTTP for this and subsequent calls until a probe
// rediscovers it. The request ID the gateway middleware attached
// travels upstream as X-Request-Id — the replica adopts it into its
// own envelope and metrics log line, so one ID names the request end
// to end.
func (g *Gateway) send(ctx context.Context, ep *endpoint, method, uri, contentType string, body []byte) (int, http.Header, []byte, error) {
	if wp := ep.wire.Load(); wp != nil {
		status, hdr, data, err := g.sendWire(ctx, ep, wp, method, uri, contentType, body)
		if err == nil {
			return status, hdr, data, nil
		}
		if !errors.Is(err, wire.ErrTransport) {
			return 0, nil, nil, err
		}
		if ctx.Err() != nil {
			// The caller gave up mid-exchange; the wire path is not at
			// fault, so keep the pool.
			return 0, nil, nil, err
		}
		ep.dropWire(wp)
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ep.url+uri, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if rid := requestIDFrom(ctx); rid != "" {
		req.Header.Set("X-Request-Id", rid)
	}
	start := time.Now()
	resp, err := g.httpc.Do(req)
	if ep.upstream != nil {
		ep.upstream.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		return 0, nil, nil, err
	}
	if len(data) > maxBodyBytes {
		return 0, nil, nil, errUpstreamTooLarge
	}
	return resp.StatusCode, resp.Header, data, nil
}

// sendWire tunnels one proxied exchange over the endpoint's wire pool
// as a Call/CallResp frame pair. The replica runs the identical HTTP
// handler behind the frame, so semantics (auth, caching, envelopes)
// match the HTTP path exactly; only the transport differs.
func (g *Gateway) sendWire(ctx context.Context, ep *endpoint, wp *wire.Pool, method, uri, contentType string, body []byte) (int, http.Header, []byte, error) {
	call := wire.Call{
		Method:      method,
		URI:         uri,
		ContentType: contentType,
		RequestID:   requestIDFrom(ctx),
		Body:        body,
	}
	buf := wire.AppendCall(wire.GetBuf(), &call)
	var status int
	var hdr http.Header
	var data []byte
	start := time.Now()
	err := wp.Do(ctx, wire.TypeCall, buf, func(f wire.Frame) error {
		if f.Type != wire.TypeCallResp {
			return fmt.Errorf("%w: unexpected frame type %d", wire.ErrTransport, f.Type)
		}
		resp, derr := wire.DecodeCallResp(f.Payload)
		if derr != nil {
			return fmt.Errorf("%w: %v", wire.ErrTransport, derr)
		}
		if len(resp.Body) > maxBodyBytes {
			return errUpstreamTooLarge
		}
		status = resp.Status
		hdr = make(http.Header, len(resp.Headers))
		for _, kv := range resp.Headers {
			hdr.Set(kv.Key, kv.Value)
		}
		data = resp.Body
		return nil
	})
	wire.PutBuf(buf)
	if ep.upstream != nil {
		ep.upstream.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return 0, nil, nil, err
	}
	return status, hdr, data, nil
}

// fanoutReload forwards a mutating reload to every replica — healthy or
// not — so no replica serves a stale model. Replicas that fail the
// fan-out (transport error or 5xx) get the reload queued for replay on
// recovery. The response is the first success if any replica applied it
// (stragglers catch up via the pending queue), a replica's own 4xx if
// the reload was invalid (deterministic catalogs: invalid on one is
// invalid on all), and a 503 only when nothing answered.
func (g *Gateway) fanoutReload(w http.ResponseWriter, r *http.Request, rt route, body []byte) {
	backendName, nfName := rt.backend, rt.nf
	if rt.v1Reload {
		var req struct {
			NF      string `json:"nf"`
			Backend string `json:"backend"`
		}
		if len(bytes.TrimSpace(body)) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				g.writeError(w, http.StatusBadRequest, "invalid_argument", "decoding reload body: "+err.Error())
				return
			}
		}
		backendName, nfName = req.Backend, req.NF
	}
	if backendName == "" {
		backendName = yalaclient.DefaultBackend
	}
	g.fanouts.Add(1)

	type result struct {
		rep    *replica
		ep     *endpoint // nil: slot was vacant, nothing dialed
		status int
		hdr    http.Header
		body   []byte
		err    error
	}
	results := make([]result, len(g.replicas))
	dialed := 0
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		ep := rep.ep.Load()
		results[i] = result{rep: rep, ep: ep}
		if ep == nil {
			// Vacant slot: a future occupant catches up via the pending
			// queue the post-processing below fills.
			continue
		}
		dialed++
		wg.Add(1)
		go func(i int, rep *replica, ep *endpoint) {
			defer wg.Done()
			status, hdr, respBody, err := g.send(r.Context(), ep, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
			results[i] = result{rep, ep, status, hdr, respBody, err}
			if err == nil {
				ep.requests.Add(1)
				if status < 400 {
					ep.fanouts.Add(1)
				}
			}
		}(i, rep, ep)
	}
	wg.Wait()

	var success, clientErr *result
	applied := 0
	for i := range results {
		res := &results[i]
		switch {
		case res.ep != nil && res.err == nil && res.status < 400:
			applied++
			if success == nil {
				success = res
			}
		case res.ep != nil && res.err == nil && res.status < 500:
			if clientErr == nil {
				clientErr = res
			}
		}
	}
	// Queue catch-up reloads for replicas that missed an applied (or
	// ambiguously applied) fan-out — including vacant slots, whose next
	// occupant must not serve the pre-reload model; a pure client error
	// applied nowhere and needs no catch-up.
	if clientErr == nil && nfName != "" {
		for i := range results {
			res := &results[i]
			if res.ep == nil || res.err != nil || res.status >= 500 {
				if res.ep != nil && res.err != nil && r.Context().Err() == nil {
					res.rep.healthy.Store(false)
					res.ep.errors.Add(1)
				}
				g.addPending(res.rep, backendName, nfName)
			}
		}
		// Pre-reload responses memoized at the edge are stale the moment
		// any replica reloads.
		g.evictEdge(nfName)
	}

	switch {
	case clientErr != nil:
		copyResponseHeaders(w, clientErr.hdr)
		w.WriteHeader(clientErr.status)
		w.Write(clientErr.body)
	case applied > 0:
		copyResponseHeaders(w, success.hdr)
		w.Header().Set("X-Gateway-Fanout", fmt.Sprintf("%d/%d", applied, dialed))
		w.WriteHeader(success.status)
		w.Write(success.body)
	default:
		g.writeProxyError(w, r, fmt.Errorf("reload fan-out reached no replica"))
	}
}

// evictEdge drops edge-cached responses a reload of nf could
// invalidate. Edge keys embed the request path and body, so matching
// the NF name anywhere in the key over-approximates (an entry naming
// the NF only as a competitor goes too) but never under-evicts: admits
// name residents only in the body, compares depend on every backend.
// Over-eviction merely costs a re-proxy to a replica whose own eviction
// is exact.
func (g *Gateway) evictEdge(nf string) {
	// Bump the generation before sweeping: in-flight misses re-check it
	// around their Put (handleProxy), so a stale response can never be
	// inserted behind the sweep and survive.
	g.reloadGen.Add(1)
	g.edge.EvictMatching(func(key string) bool {
		return strings.Contains(key, nf)
	})
}

// writeError renders the /v2 structured error envelope for
// gateway-originated failures.
func (g *Gateway) writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"code": code, "message": message},
	})
}

// handleGatewayStats serves the gateway's own operator snapshot
// (GET /v2/gateway/stats), wire-shaped as yalaclient.GatewayStats. Each
// healthy replica is asked for its live cache size so operators can
// watch a reload fan-out land everywhere.
func (g *Gateway) handleGatewayStats(w http.ResponseWriter, r *http.Request) {
	out := yalaclient.GatewayStats{
		Requests:  g.requests.Load(),
		Retries:   g.retries.Load(),
		Fanouts:   g.fanouts.Load(),
		Coalesced: g.coalesced.Load(),
		Canceled:  g.canceled.Load(),
	}
	es := g.edge.Stats()
	out.EdgeHits, out.EdgeMisses, out.EdgeEntries = es.Hits, es.Misses, es.Entries

	eps := make([]*endpoint, len(g.replicas))
	entries := make([]int, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		entries[i] = -1
		eps[i] = rep.ep.Load()
		if eps[i] == nil || !rep.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, ep *endpoint) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), g.cfg.HealthTimeout)
			defer cancel()
			if st, err := ep.client.Stats(ctx); err == nil {
				entries[i] = st.Cache.Entries
			}
		}(i, eps[i])
	}
	wg.Wait()
	for i, rep := range g.replicas {
		ep := eps[i]
		if ep == nil {
			continue // vacant slot: nothing an operator can dial
		}
		rep.mu.Lock()
		npending := len(rep.pending)
		rep.mu.Unlock()
		out.Replicas = append(out.Replicas, yalaclient.GatewayReplicaStats{
			URL:            ep.url,
			Slot:           rep.slot,
			Healthy:        rep.healthy.Load(),
			Requests:       ep.requests.Load(),
			Errors:         ep.errors.Load(),
			Fanouts:        ep.fanouts.Load(),
			CacheEntries:   entries[i],
			PendingReloads: npending,
		})
	}
	out.Slots = len(g.replicas)
	if g.cfg.Gate != nil {
		for _, snap := range g.cfg.Gate.Snapshots() {
			out.Tenants = append(out.Tenants, yalaclient.GatewayTenantStats{
				Tenant:      snap.Tenant,
				Limited:     snap.Limited,
				Requests:    snap.Requests,
				Interactive: snap.Interactive,
				Bulk:        snap.Bulk,
				Shed:        snap.Shed,
				RateLimited: snap.RateLimited,
				Overloaded:  snap.Overloaded,
				Errors:      snap.Errors,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAggregateStats sums /v2/stats across healthy replicas so
// operator tooling (and loadgen's cache-hit-rate snapshot) sees
// fleet-wide counters: request, error and cache counters add, workers
// sum to aggregate capacity, the model list and backend set are unions,
// uptime is the oldest replica's.
func (g *Gateway) handleAggregateStats(w http.ResponseWriter, r *http.Request) {
	type fetched struct {
		st  yalaclient.Stats
		err error
	}
	results := make([]fetched, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		results[i].err = fmt.Errorf("unhealthy")
		ep := rep.ep.Load()
		if ep == nil || !rep.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, ep *endpoint) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), g.cfg.HealthTimeout)
			defer cancel()
			results[i].st, results[i].err = ep.client.Stats(ctx)
		}(i, ep)
	}
	wg.Wait()

	agg := yalaclient.Stats{Requests: map[string]uint64{}}
	models := map[string]yalaclient.ModelInfo{}
	backends := map[string]bool{}
	answered := 0
	for _, res := range results {
		if res.err != nil {
			continue
		}
		answered++
		st := res.st
		// Uptime is the oldest replica's and start time the earliest —
		// never a sum: five replicas up an hour each is still an
		// hour-old fleet.
		if st.UptimeSec > agg.UptimeSec {
			agg.UptimeSec = st.UptimeSec
		}
		if st.UptimeSeconds > agg.UptimeSeconds {
			agg.UptimeSeconds = st.UptimeSeconds
		}
		if st.StartTime != 0 && (agg.StartTime == 0 || st.StartTime < agg.StartTime) {
			agg.StartTime = st.StartTime
		}
		agg.Workers += st.Workers
		for k, v := range st.Requests {
			agg.Requests[k] += v
		}
		agg.Errors += st.Errors
		agg.Cache.Entries += st.Cache.Entries
		agg.Cache.Hits += st.Cache.Hits
		agg.Cache.Misses += st.Cache.Misses
		agg.Cache.Evictions += st.Cache.Evictions
		agg.PersistFailures += st.PersistFailures
		if st.LastPersistErr != "" {
			agg.LastPersistErr = st.LastPersistErr
		}
		if st.Drift != nil {
			if agg.Drift == nil {
				agg.Drift = &yalaclient.DriftStats{}
			}
			agg.Drift.Observations += st.Drift.Observations
			agg.Drift.Quarantined += st.Drift.Quarantined
			agg.Drift.Holds += st.Drift.Holds
			agg.Drift.Trips += st.Drift.Trips
			agg.Drift.Retrains += st.Drift.Retrains
			agg.Drift.TrainFailures += st.Drift.TrainFailures
			agg.Drift.ShadowSamples += st.Drift.ShadowSamples
			agg.Drift.ShadowCompares += st.Drift.ShadowCompares
			agg.Drift.ShadowAborts += st.Drift.ShadowAborts
			agg.Drift.Promotions += st.Drift.Promotions
		}
		for _, b := range st.Backends {
			backends[b] = true
		}
		for _, m := range st.Models {
			key := m.NF + "|" + m.HW + "|" + m.Backend
			if prev, ok := models[key]; ok {
				prev.Loaded = prev.Loaded || m.Loaded
				prev.OnDisk = prev.OnDisk || m.OnDisk
				// The fleet's view of a model is its freshest resolution:
				// after a promotion fan-out, the highest generation is the
				// promoted one.
				if m.Generation > prev.Generation {
					prev.Generation = m.Generation
				}
				if m.TrainedAt > prev.TrainedAt {
					prev.TrainedAt = m.TrainedAt
				}
				models[key] = prev
			} else {
				models[key] = m
			}
		}
	}
	if answered == 0 {
		g.writeError(w, http.StatusServiceUnavailable, "unavailable", "no healthy replica answered /v2/stats")
		return
	}
	for b := range backends {
		agg.Backends = append(agg.Backends, b)
	}
	sort.Strings(agg.Backends)
	for _, m := range models {
		agg.Models = append(agg.Models, m)
	}
	sort.Slice(agg.Models, func(i, j int) bool {
		a, b := agg.Models[i], agg.Models[j]
		if a.NF != b.NF {
			return a.NF < b.NF
		}
		if a.HW != b.HW {
			return a.HW < b.HW
		}
		return a.Backend < b.Backend
	})
	writeJSON(w, http.StatusOK, agg)
}

// handleBatchScatter splits a :batchPredict body by each element's
// routing key, issues the per-replica sub-batches concurrently, and
// reassembles responses in request order — one client round trip fans
// out to every shard at once instead of serializing N proxied calls.
func (g *Gateway) handleBatchScatter(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid_argument", "reading request body: "+err.Error())
		return
	}
	var params struct {
		Requests []json.RawMessage `json:"requests"`
	}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &params); err != nil {
			g.writeError(w, http.StatusBadRequest, "invalid_argument", "decoding request body: "+err.Error())
			return
		}
	}

	// Group elements by home replica: each element ranks on its own
	// (nf, hw, backend) key and joins the sub-batch of the top-ranked
	// replica, so every model stays on its cache-hot shard. The group
	// remembers its first element's key — the failover order for the
	// whole sub-batch if that replica dies between grouping and send.
	type elemID struct {
		Model   string `json:"model"`
		Backend string `json:"backend"`
	}
	type subBatch struct {
		key    string
		idxs   []int
		status int
		body   []byte
		err    error
	}
	byReplica := map[*replica]*subBatch{}
	var subs []*subBatch
	for i, raw := range params.Requests {
		var e elemID
		// A malformed element still routes (somewhere); the replica owns
		// validation and its whole-batch 400 proxies back.
		_ = json.Unmarshal(raw, &e)
		nf, hw := splitModelID(e.Model)
		key := modelKey(nf, hw, e.Backend)
		ranked := g.rank(key)
		if len(ranked) == 0 {
			g.writeError(w, http.StatusServiceUnavailable, "unavailable", "no replica attached")
			return
		}
		home := ranked[0].rep
		sub, ok := byReplica[home]
		if !ok {
			sub = &subBatch{key: key}
			byReplica[home] = sub
			subs = append(subs, sub)
		}
		sub.idxs = append(sub.idxs, i)
	}

	var wg sync.WaitGroup
	for _, sub := range subs {
		raws := make([]json.RawMessage, len(sub.idxs))
		for j, idx := range sub.idxs {
			raws[j] = params.Requests[idx]
		}
		subBody, err := json.Marshal(map[string]any{"requests": raws})
		if err != nil {
			g.writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		wg.Add(1)
		go func(sub *subBatch, subBody []byte) {
			defer wg.Done()
			_, sub.status, _, sub.body, sub.err = g.sendWithFailover(r.Context(), sub.key, http.MethodPost, "/v2/models:batchPredict", "application/json", subBody)
		}(sub, subBody)
	}
	wg.Wait()

	responses := make([]json.RawMessage, len(params.Requests))
	errs := make([]string, len(params.Requests))
	anyErr := false
	for _, sub := range subs {
		if sub.err != nil {
			g.writeProxyError(w, r, fmt.Errorf("sub-batch failed on every replica: %w", sub.err))
			return
		}
		if sub.status != http.StatusOK {
			// The replica's whole-batch error names sub-batch indices;
			// remap them to the client's before proxying the status.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(sub.status)
			w.Write(remapIndices(sub.body, "requests[", sub.idxs))
			return
		}
		var decoded struct {
			Responses []json.RawMessage `json:"responses"`
			Errors    []string          `json:"errors"`
		}
		if err := json.Unmarshal(sub.body, &decoded); err != nil || len(decoded.Responses) != len(sub.idxs) {
			g.writeError(w, http.StatusBadGateway, "internal", "replica returned a malformed sub-batch response")
			return
		}
		for j, idx := range sub.idxs {
			responses[idx] = decoded.Responses[j]
			if j < len(decoded.Errors) && decoded.Errors[j] != "" {
				errs[idx] = decoded.Errors[j]
				anyErr = true
			}
		}
	}
	out := struct {
		Responses []json.RawMessage `json:"responses"`
		Errors    []string          `json:"errors,omitempty"`
	}{Responses: responses}
	if out.Responses == nil {
		out.Responses = []json.RawMessage{}
	}
	if anyErr {
		out.Errors = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// handleIngestScatter splits a /v2/ingest body by each measurement's
// routing key and issues per-replica sub-batches concurrently, so every
// measurement lands on its model's home replica — the one whose
// feedback window, shadow candidate and predict cache describe that
// model. Responses sum: the client sees one fleet-wide accept count.
func (g *Gateway) handleIngestScatter(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid_argument", "reading request body: "+err.Error())
		return
	}
	var params struct {
		Measurements []json.RawMessage `json:"measurements"`
	}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &params); err != nil {
			g.writeError(w, http.StatusBadRequest, "invalid_argument", "decoding request body: "+err.Error())
			return
		}
	}

	// Group measurements by home replica on the same (nf, hw, backend)
	// key predictions route by — feedback must accumulate where the
	// model serves.
	type elemID struct {
		Model   string `json:"model"`
		Backend string `json:"backend"`
	}
	type subBatch struct {
		key    string
		idxs   []int
		status int
		body   []byte
		err    error
	}
	byReplica := map[*replica]*subBatch{}
	var subs []*subBatch
	for i, raw := range params.Measurements {
		var e elemID
		// A malformed measurement still routes (somewhere); the replica
		// owns validation and its whole-batch 400 proxies back.
		_ = json.Unmarshal(raw, &e)
		nf, hw := splitModelID(e.Model)
		key := modelKey(nf, hw, e.Backend)
		ranked := g.rank(key)
		if len(ranked) == 0 {
			g.writeError(w, http.StatusServiceUnavailable, "unavailable", "no replica attached")
			return
		}
		home := ranked[0].rep
		sub, ok := byReplica[home]
		if !ok {
			sub = &subBatch{key: key}
			byReplica[home] = sub
			subs = append(subs, sub)
		}
		sub.idxs = append(sub.idxs, i)
	}

	var wg sync.WaitGroup
	for _, sub := range subs {
		raws := make([]json.RawMessage, len(sub.idxs))
		for j, idx := range sub.idxs {
			raws[j] = params.Measurements[idx]
		}
		subBody, err := json.Marshal(map[string]any{"measurements": raws})
		if err != nil {
			g.writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		wg.Add(1)
		go func(sub *subBatch, subBody []byte) {
			defer wg.Done()
			_, sub.status, _, sub.body, sub.err = g.sendWithFailover(r.Context(), sub.key, http.MethodPost, "/v2/ingest", "application/json", subBody)
		}(sub, subBody)
	}
	wg.Wait()

	var accepted, quarantined int
	for _, sub := range subs {
		if sub.err != nil {
			g.writeProxyError(w, r, fmt.Errorf("ingest sub-batch failed on every replica: %w", sub.err))
			return
		}
		if sub.status != http.StatusOK {
			// The replica's error names sub-batch indices; remap them to
			// the client's before proxying the status.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(sub.status)
			w.Write(remapIndices(sub.body, "measurements[", sub.idxs))
			return
		}
		var res struct {
			Accepted    int `json:"accepted"`
			Quarantined int `json:"quarantined"`
		}
		if err := json.Unmarshal(sub.body, &res); err != nil {
			g.writeError(w, http.StatusBadGateway, "internal", "replica returned a malformed ingest response")
			return
		}
		accepted += res.Accepted
		quarantined += res.Quarantined
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "quarantined": quarantined})
}

// PromoteReload propagates one replica's feedback-driven model
// promotion to the rest of the fleet: every other replica reloads the
// (backend, nf) pair — dropping its in-memory model so the next
// request re-reads the promoted artifact from the shared model
// directory — and the gateway's edge cache sheds every response the
// retired model computed. Replicas that cannot be reached get the
// reload queued for replay on recovery, exactly like a client-driven
// :reload fan-out. exceptURL names the promoting replica, which
// already swapped atomically and must not be told to drop the model it
// just installed.
func (g *Gateway) PromoteReload(backendName, nfName, exceptURL string) {
	if backendName == "" {
		backendName = yalaclient.DefaultBackend
	}
	g.fanouts.Add(1)
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		ep := rep.ep.Load()
		if ep == nil {
			// A vacant slot's next occupant must not serve the retired
			// model.
			g.addPending(rep, backendName, nfName)
			continue
		}
		if ep.url == exceptURL {
			continue
		}
		wg.Add(1)
		go func(rep *replica, ep *endpoint) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
			defer cancel()
			err := ep.client.Reload(ctx, yalaclient.ModelID{NF: nfName}, backendName)
			var apiErr *yalaclient.APIError
			if err != nil && !(errors.As(err, &apiErr) && apiErr.StatusCode < 500) {
				ep.errors.Add(1)
				g.addPending(rep, backendName, nfName)
				return
			}
			ep.requests.Add(1)
			ep.fanouts.Add(1)
		}(rep, ep)
	}
	wg.Wait()
	g.evictEdge(nfName)
}

// remapIndices rewrites "<marker><i>]" references in a replica's
// whole-batch error from sub-batch positions to the client's original
// element indices, so "requests[0]" in a 2-element sub-batch can
// surface as "requests[7]" of the client's 10-element batch.
func remapIndices(body []byte, marker string, idxs []int) []byte {
	s := string(body)
	i := strings.Index(s, marker)
	if i < 0 {
		return body
	}
	j := i + len(marker)
	k := j
	for k < len(s) && s[k] >= '0' && s[k] <= '9' {
		k++
	}
	if k == j || k >= len(s) || s[k] != ']' {
		return body
	}
	sub, err := strconv.Atoi(s[j:k])
	if err != nil || sub < 0 || sub >= len(idxs) {
		return body
	}
	return []byte(s[:j] + strconv.Itoa(idxs[sub]) + s[k:])
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
