package cluster

import (
	"context"
	"testing"

	"repro/internal/placement"
	"repro/internal/traffic"
)

// benchFleet builds a half-loaded fleet over a prewarmed environment —
// the steady state the scheduling hot path runs in.
func benchFleet(b *testing.B, env *Env, nics int) *Fleet {
	b.Helper()
	sc := Scenario{NICs: nics, NFs: testNFs, Profiles: 2, Seed: 1}.WithDefaults()
	if err := env.Prewarm(context.Background(), sc, []string{"yala", "slomo"}); err != nil {
		b.Fatal(err)
	}
	pool := sc.ProfilePool()
	f := env.NewFleet(nics)
	id := 0
	for i := 0; i < nics; i++ {
		for j := 0; j < 1+i%2; j++ {
			f.place(i, Tenant{ID: id, Arrival: placement.Arrival{
				Name:    testNFs[id%len(testNFs)],
				Profile: pool[id%len(pool)],
				SLA:     0.5,
			}})
			id++
		}
	}
	return f
}

// benchChoose measures one policy's scheduling decision over a 32-NIC
// fleet — the hot path every arrival, drift and migration goes through.
func benchChoose(b *testing.B, policy string) {
	env := testEnv(b, testModels(b))
	f := benchFleet(b, env, 32)
	a := placement.Arrival{Name: "FlowStats", Profile: traffic.Default, SLA: 0.2}
	sched, err := NewScheduler(policy, env, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sched.Choose(f, a); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Choose(f, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChooseYala(b *testing.B)     { benchChoose(b, "yala") }
func BenchmarkChooseSLOMO(b *testing.B)    { benchChoose(b, "slomo") }
func BenchmarkChooseFirstFit(b *testing.B) { benchChoose(b, "firstfit") }
