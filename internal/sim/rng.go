// Package sim provides a small deterministic discrete-event simulation
// kernel used by the SmartNIC model: an event queue ordered by simulated
// time, a clock, and seeded random-number streams.
//
// Everything in this package is deterministic given a seed, which keeps
// experiment outputs and tests reproducible.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is intentionally independent of math/rand so that stream
// behaviour is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new independent stream from the current one. It is useful
// for giving each simulated component its own stream so that adding a
// component does not perturb the draws seen by others.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns x perturbed by a multiplicative factor drawn from
// N(1, rel). The result is clamped to be non-negative.
func (r *RNG) Jitter(x, rel float64) float64 {
	v := x * r.Norm(1, rel)
	if v < 0 {
		return 0
	}
	return v
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
