package nf

import (
	"repro/internal/nicsim"
	"repro/internal/packet"
)

// ensureParsed fills the packet's parsed view if the caller handed over
// raw bytes.
func ensureParsed(p *packet.Packet) error {
	if p.PayloadOff > 0 {
		return nil
	}
	return p.Parse()
}

// scanPayload submits the packet payload to the regex accelerator:
// footprint measurement records the request size and the ground-truth
// match count from the shared compiled ruleset.
func scanPayload(p *packet.Packet, st *OpStats) int {
	pl := p.Payload()
	st.RegexBytes += float64(len(pl))
	matches := Matcher.Count(pl)
	st.RegexMatches += float64(matches)
	return matches
}

// headerBytes is the portion of the frame the CPU touches for header-only
// processing (Ethernet + IPv4 + L4 headers).
const headerBytes = 54

// FlowStats maintains per-flow packet and byte counters — the canonical
// header-only, flow-sensitive NF (Click, no accelerator).
type FlowStats struct {
	table *FlowTable
}

// NewFlowStats returns an empty FlowStats NF.
func NewFlowStats() *FlowStats { return &FlowStats{table: NewFlowTable()} }

// Name implements NF.
func (f *FlowStats) Name() string { return "FlowStats" }

// Pattern implements NF.
func (f *FlowStats) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (f *FlowStats) StateBytes() float64 { return f.table.StateBytes() }

// Reset implements NF.
func (f *FlowStats) Reset() { f.table.Reset() }

// Process implements NF: look up (or create) the flow entry and update
// its counters.
func (f *FlowStats) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	e, probes, _ := f.table.Insert(p.Tuple.Hash())
	e.Data[0]++                  // packets
	e.Data[1] += uint64(p.Len()) // bytes
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// Flows reports the number of tracked flows.
func (f *FlowStats) Flows() int { return f.table.Len() }

// FlowClassifier assigns each flow to one of nClasses service classes and
// counts per-class traffic (DPDK ip_pipeline-style).
type FlowClassifier struct {
	table      *FlowTable
	classCount [64]uint64
}

// NewFlowClassifier returns an empty classifier.
func NewFlowClassifier() *FlowClassifier { return &FlowClassifier{table: NewFlowTable()} }

// Name implements NF.
func (f *FlowClassifier) Name() string { return "FlowClassifier" }

// Pattern implements NF.
func (f *FlowClassifier) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (f *FlowClassifier) StateBytes() float64 {
	return f.table.StateBytes() + float64(len(f.classCount)*8)
}

// Reset implements NF.
func (f *FlowClassifier) Reset() {
	f.table.Reset()
	f.classCount = [64]uint64{}
}

// Process implements NF.
func (f *FlowClassifier) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	key := p.Tuple.Hash()
	e, probes, created := f.table.Insert(key)
	if created {
		e.Data[0] = key & 63 // assigned class
	}
	f.classCount[e.Data[0]&63]++
	e.Data[1]++
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// Class returns the class assigned to a flow key, for tests.
func (f *FlowClassifier) Class(key uint64) (uint64, bool) {
	e, _ := f.table.Lookup(key)
	if e == nil {
		return 0, false
	}
	return e.Data[0], true
}

// FlowTracker follows per-flow connection state: packet counts, a logical
// last-seen stamp, and accumulated TCP flags (DOCA flow-tracking style).
type FlowTracker struct {
	table *FlowTable
	tick  uint64
}

// NewFlowTracker returns an empty tracker.
func NewFlowTracker() *FlowTracker { return &FlowTracker{table: NewFlowTable()} }

// Name implements NF.
func (f *FlowTracker) Name() string { return "FlowTracker" }

// Pattern implements NF.
func (f *FlowTracker) Pattern() nicsim.ExecPattern { return nicsim.RunToCompletion }

// StateBytes implements NF.
func (f *FlowTracker) StateBytes() float64 { return f.table.StateBytes() }

// Reset implements NF.
func (f *FlowTracker) Reset() {
	f.table.Reset()
	f.tick = 0
}

// Process implements NF.
func (f *FlowTracker) Process(p *packet.Packet, st *OpStats) error {
	if err := ensureParsed(p); err != nil {
		return err
	}
	f.tick++
	e, probes, _ := f.table.Insert(p.Tuple.Hash())
	e.Data[0]++        // packets
	e.Data[1] = f.tick // last seen
	if p.Tuple.Proto == packet.ProtoTCP && p.PayloadOff >= 14 {
		// Accumulate the TCP flags byte (offset 13 in the TCP header).
		flagOff := p.PayloadOff - packet.TCPHeaderLen + 13
		if flagOff < len(p.Data) {
			e.Data[2] |= uint64(p.Data[flagOff])
		}
	}
	st.HashProbes += float64(probes)
	st.BytesTouched += headerBytes
	st.Packets++
	return nil
}

// ActiveFlows reports the number of tracked flows.
func (f *FlowTracker) ActiveFlows() int { return f.table.Len() }
