package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/tenant"
	"repro/internal/wire"
	"repro/pkg/yalaclient"
)

// wireTestServer boots a service with both front doors: the HTTP
// handler behind httptest and a yalawire listener on loopback. The
// fake backend keeps predictions instant and deterministic.
func wireTestServer(t *testing.T, gate *tenant.Gate) (*Service, *httptest.Server, *WireServer) {
	t.Helper()
	svc := NewService(ServiceConfig{
		Registry: testRegistryConfig(t),
		Workers:  2,
		Gate:     gate,
	})
	t.Cleanup(svc.Close)
	handler := svc.Handler()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	wlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := svc.ServeWire(wlis, handler)
	t.Cleanup(ws.Close)
	return svc, ts, ws
}

// TestWirePredictEndToEnd drives the SDK's wire transport against a
// live wire listener: predict and batch ride binary frames (the wire
// request counter moves, the HTTP one does not), responses match the
// JSON path's, and service errors surface as the same typed errors.
func TestWirePredictEndToEnd(t *testing.T) {
	svc, ts, ws := wireTestServer(t, nil)
	wc := yalaclient.New(ts.URL, yalaclient.WithWire(ws.Addr()))
	defer wc.Close()
	ctx := context.Background()

	res, err := wc.Predict(ctx, yalaclient.ModelID{NF: "ACL"}, "fake", yalaclient.PredictParams{
		Profile:     yalaclient.ProfileSpec{Flows: 1000},
		Competitors: []yalaclient.Competitor{{Name: "NIDS"}},
	})
	if err != nil {
		t.Fatalf("wire predict: %v", err)
	}
	if res.NF != "ACL" || res.Backend != "fake" || res.PredictedPPS <= 0 {
		t.Fatalf("wire predict result %+v", res)
	}
	if got := svc.wireRequests.Load(); got != 1 {
		t.Fatalf("wire request counter = %d, want 1", got)
	}

	// The JSON path must agree byte-for-byte on the numbers: same
	// service, same cache, different framing.
	jc := yalaclient.New(ts.URL)
	jres, err := jc.Predict(ctx, yalaclient.ModelID{NF: "ACL"}, "fake", yalaclient.PredictParams{
		Profile:     yalaclient.ProfileSpec{Flows: 1000},
		Competitors: []yalaclient.Competitor{{Name: "NIDS"}},
	})
	if err != nil {
		t.Fatalf("json predict: %v", err)
	}
	if jres.PredictedPPS != res.PredictedPPS || jres.SoloPPS != res.SoloPPS {
		t.Fatalf("wire %+v and JSON %+v disagree", res, jres)
	}

	batch, err := wc.PredictBatch(ctx, []yalaclient.BatchItem{
		{Model: yalaclient.ModelID{NF: "ACL"}, Backend: "fake"},
		{Model: yalaclient.ModelID{NF: "NAT"}, Backend: "fake"},
	})
	if err != nil {
		t.Fatalf("wire batch: %v", err)
	}
	if len(batch.Responses) != 2 || batch.Responses[1].NF != "NAT" {
		t.Fatalf("wire batch result %+v", batch)
	}
	if got := svc.wireRequests.Load(); got != 2 {
		t.Fatalf("wire request counter = %d after batch, want 2", got)
	}
	if got := svc.httpRequests.Load(); got != 1 {
		t.Fatalf("http request counter = %d, want only the JSON control predict", got)
	}

	// A service error crosses the wire as the same typed error the JSON
	// path produces — and never as a transport failure that would park
	// the wire path.
	_, err = wc.Predict(ctx, yalaclient.ModelID{NF: "NoSuchNF"}, "fake", yalaclient.PredictParams{})
	var apiErr *yalaclient.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("unknown NF over wire: %v, want *yalaclient.APIError", err)
	}
	if !wc.WireActive() {
		t.Fatal("service error parked the wire transport")
	}
}

// TestWireTransportMetrics pins the transport split in the exposition:
// one wire predict and one HTTP predict produce one count on each
// yala_requests_total{transport=...} series.
func TestWireTransportMetrics(t *testing.T) {
	_, ts, ws := wireTestServer(t, nil)
	wc := yalaclient.New(ts.URL, yalaclient.WithWire(ws.Addr()))
	defer wc.Close()
	if _, err := wc.Predict(context.Background(), yalaclient.ModelID{NF: "ACL"}, "fake", yalaclient.PredictParams{}); err != nil {
		t.Fatal(err)
	}
	jc := yalaclient.New(ts.URL)
	if _, err := jc.Predict(context.Background(), yalaclient.ModelID{NF: "ACL"}, "fake", yalaclient.PredictParams{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)
	for _, want := range []string{
		`yala_requests_total{transport="wire"} 1`,
		`yala_requests_total{transport="http"} 1`,
	} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exposition)
		}
	}
}

// TestWireCallTunnel exercises the generic TypeCall path the gateway's
// wire upstreams ride: a stats GET tunneled through the real HTTP
// handler, answering with the HTTP status, forwarded headers and body.
func TestWireCallTunnel(t *testing.T) {
	_, _, ws := wireTestServer(t, nil)
	pool := wire.NewPool(ws.Addr(), "", 2)
	defer pool.Close()

	call := wire.Call{Method: http.MethodGet, URI: "/v2/stats", RequestID: "tunnel-1"}
	buf := wire.AppendCall(wire.GetBuf(), &call)
	defer wire.PutBuf(buf)
	var status int
	var body string
	var rid string
	err := pool.Do(context.Background(), wire.TypeCall, buf, func(f wire.Frame) error {
		if f.Type != wire.TypeCallResp {
			return fmt.Errorf("frame type %d", f.Type)
		}
		resp, err := wire.DecodeCallResp(f.Payload)
		if err != nil {
			return err
		}
		status = resp.Status
		body = string(resp.Body)
		for _, kv := range resp.Headers {
			if kv.Key == "X-Request-Id" {
				rid = kv.Value
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("TypeCall: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("tunneled /v2/stats status %d: %s", status, body)
	}
	// The stats body must advertise the wire listener itself — that is
	// what gateway discovery keys on.
	if !strings.Contains(body, `"wire_addr":"`+ws.Addr()+`"`) {
		t.Fatalf("stats over wire does not advertise wire_addr: %s", body)
	}
	if rid != "tunnel-1" {
		t.Fatalf("tunneled request lost its X-Request-Id: %q", rid)
	}
}

// TestWireGateRefusal: the tenant gate refuses over the wire with the
// same status/code/Retry-After triple the HTTP middleware sends, and
// the refusal does not tear the connection down.
func TestWireGateRefusal(t *testing.T) {
	reg, err := tenant.Parse([]byte(`{
		"tenants": [{"name": "capped", "key": "k-capped", "rps": 1, "burst": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, ws := wireTestServer(t, tenant.NewGate(reg, tenant.GateConfig{}))
	wc := yalaclient.New(ts.URL, yalaclient.WithWire(ws.Addr()), yalaclient.WithAPIKey("k-capped"))
	defer wc.Close()
	ctx := context.Background()

	if _, err := wc.Predict(ctx, yalaclient.ModelID{NF: "ACL"}, "fake", yalaclient.PredictParams{}); err != nil {
		t.Fatalf("first capped predict: %v", err)
	}
	_, err = wc.Predict(ctx, yalaclient.ModelID{NF: "ACL"}, "fake", yalaclient.PredictParams{})
	var rle *yalaclient.RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("second capped predict: %v, want *RateLimitError", err)
	}
	if rle.RetryAfter <= 0 {
		t.Fatalf("wire 429 lost its retry hint: %+v", rle)
	}
	if !wc.WireActive() {
		t.Fatal("a shed parked the wire transport")
	}
}

// TestWireEchoFloor sanity-checks the loadgen -wirefloor measurement
// path against a live listener: every frame answered, latencies
// recorded, throughput positive.
func TestWireEchoFloor(t *testing.T) {
	_, _, ws := wireTestServer(t, nil)
	rep, err := WireEchoFloor(ws.Addr(), 2, 200, 64)
	if err != nil {
		t.Fatalf("floor run: %v", err)
	}
	if rep.Frames != 200 || rep.Errors != 0 {
		t.Fatalf("floor report %+v, want 200 clean frames", rep)
	}
	if rep.FPS <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("floor percentiles look wrong: %+v", rep)
	}
}

// TestCanceledRequestsKeepGateIdle is the shed-signal regression test:
// a flood of requests whose clients already hung up must answer 499,
// count into yala_client_canceled_total, and leave the tenant gate's
// pressure signal untouched — canceled clients are not server errors
// and must never push the gate toward shedding live traffic.
func TestCanceledRequestsKeepGateIdle(t *testing.T) {
	reg, err := tenant.Parse([]byte(`{"tenants": []}`))
	if err != nil {
		t.Fatal(err)
	}
	gate := tenant.NewGate(reg, tenant.GateConfig{})
	svc, _, _ := wireTestServer(t, gate)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	handler := svc.Handler()
	const flood = 25
	for i := 0; i < flood; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v2/models/ACL/fake:predict",
			strings.NewReader(`{"profile":{"flows":`+fmt.Sprint(1000+i)+`}}`))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req.WithContext(canceled))
		if rec.Code != tenant.StatusClientClosedRequest {
			t.Fatalf("canceled request %d answered %d, want 499: %s", i, rec.Code, rec.Body.String())
		}
	}
	if got := svc.canceled.Load(); got != flood {
		t.Fatalf("canceled counter = %d, want %d", got, flood)
	}
	if got := svc.errors.Load(); got != 0 {
		t.Fatalf("error counter moved on a canceled flood: %d", got)
	}
	// The gate saw no observations at all: no latency samples, no
	// errors, so its windowed pressure stays exactly idle.
	if score := gate.LoadScore(); score != 0 {
		t.Fatalf("gate load score %v after canceled flood, want 0", score)
	}
	if shed := gate.ShedTotal(); shed != 0 {
		t.Fatalf("gate shed %d requests during a canceled flood", shed)
	}
	var sb strings.Builder
	if err := svc.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), fmt.Sprintf("yala_client_canceled_total %d", flood)) {
		t.Fatalf("exposition missing the canceled counter:\n%s", sb.String())
	}
}
