package nf

import "repro/internal/sim"

// LPM is a longest-prefix-match routing table implemented as a two-level
// multibit trie (16-bit root stride, 8-bit chunks), the structure
// software routers use for IPv4 FIBs. Lookups report the number of trie
// nodes visited so footprint measurement can count cache references.
type LPM struct {
	root   []int32   // 65536 entries: next hop (negative) or chunk index+1
	chunks [][]int32 // 256-entry chunks for /17../24 prefixes
	routes int
}

// NewLPM returns an empty routing table.
func NewLPM() *LPM {
	return &LPM{root: make([]int32, 1<<16)}
}

// Routes returns the number of inserted routes.
func (l *LPM) Routes() int { return l.routes }

// StateBytes is the FIB's memory footprint.
func (l *LPM) StateBytes() float64 {
	return float64(4*len(l.root) + 4*256*len(l.chunks))
}

// Insert adds a route for the given prefix (length 8..24) with nextHop
// (must be >= 0). Longer prefixes win on lookup.
func (l *LPM) Insert(prefix uint32, length int, nextHop int32) {
	if length <= 16 {
		// Fill the covered root range unless a chunk pointer (longer
		// prefixes) already occupies a slot.
		base := prefix >> 16 & 0xffff
		span := uint32(1) << (16 - length)
		start := base &^ (span - 1)
		for i := start; i < start+span; i++ {
			if l.root[i] <= 0 { // empty or next hop: overwrite
				l.root[i] = -nextHop - 1
			}
		}
	} else {
		idx := prefix >> 16 & 0xffff
		ci := l.root[idx]
		var chunk []int32
		if ci > 0 {
			chunk = l.chunks[ci-1]
		} else {
			chunk = make([]int32, 256)
			// Pre-fill with the existing shorter-prefix hop so misses in
			// the chunk still resolve.
			for i := range chunk {
				chunk[i] = l.root[idx]
			}
			l.chunks = append(l.chunks, chunk)
			l.root[idx] = int32(len(l.chunks))
		}
		base := prefix >> 8 & 0xff
		span := uint32(1) << (24 - length)
		start := base &^ (span - 1)
		for i := start; i < start+span; i++ {
			chunk[i] = -nextHop - 1
		}
	}
	l.routes++
}

// Lookup resolves ip to a next hop. It returns the hop (-1 if no route)
// and the number of trie nodes visited.
func (l *LPM) Lookup(ip uint32) (int32, int) {
	v := l.root[ip>>16]
	if v == 0 {
		return -1, 1
	}
	if v < 0 {
		return -v - 1, 1
	}
	w := l.chunks[v-1][ip>>8&0xff]
	if w < 0 {
		return -w - 1, 2
	}
	return -1, 2
}

// PopulateRandom fills the table with n random routes spanning /8../24
// prefixes, deterministic in rng.
func (l *LPM) PopulateRandom(n int, rng *sim.RNG) {
	for i := 0; i < n; i++ {
		length := 8 + rng.Intn(17) // 8..24
		prefix := uint32(rng.Uint64()) &^ (1<<(32-length) - 1)
		l.Insert(prefix, length, int32(rng.Intn(256)))
	}
}
