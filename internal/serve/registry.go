package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/slomo"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// RegistryConfig tunes a ModelRegistry.
type RegistryConfig struct {
	// Dir is the model directory. Persisted models are discovered here
	// and on-demand-trained models are written back to it. Empty disables
	// persistence (every model trains on demand, in memory only).
	Dir string
	// NIC is the hardware preset used when a model must be trained on
	// demand; the zero value selects BlueField-2.
	NIC nicsim.Config
	// Seed drives on-demand training.
	Seed uint64
	// Train configures on-demand Yala training. The zero value selects
	// QuickTrainConfig — full offline training belongs in `yala train`,
	// not on a serving path.
	Train core.TrainConfig
	// SLOMO configures on-demand SLOMO training; zero value selects
	// QuickSLOMOConfig.
	SLOMO slomo.Config
	// SLOMOProfile is the fixed profile SLOMO trains at; zero value
	// selects the paper default.
	SLOMOProfile traffic.Profile
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.NIC.Name == "" {
		c.NIC = nicsim.BlueField2()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Train.GBR.Trees == 0 {
		c.Train = QuickTrainConfig(c.Seed)
	}
	if c.SLOMO.Samples == 0 {
		c.SLOMO = QuickSLOMOConfig(c.Seed)
	}
	if c.SLOMOProfile == (traffic.Profile{}) {
		c.SLOMOProfile = traffic.Default
	}
	return c
}

// entryKey identifies one model slot.
type entryKey struct {
	backend Backend
	name    string
}

// ModelRegistry loads persisted per-NF models lazily and concurrently
// safely: the first Get for a key performs the load (or trains and
// persists when no model file exists) while every concurrent Get for the
// same key blocks until that one attempt resolves (flightGroup). Failed
// loads are not cached; the next Get retries.
type ModelRegistry struct {
	cfg RegistryConfig

	yala  flightGroup[string, *core.Model]
	slomo flightGroup[string, *slomo.Model]

	// persistFails counts model-persistence failures; lastPersistErr
	// keeps the most recent one. A persist failure must not discard a
	// trained model or fail the request — serving stays up, the operator
	// sees the failure in stats.
	statMu         sync.Mutex
	persistFails   uint64
	lastPersistErr string

	// trainHook, when set, observes every on-demand training (tests).
	trainHook func(Backend, string)
}

// NewRegistry returns a registry over a model directory.
func NewRegistry(cfg RegistryConfig) *ModelRegistry {
	return &ModelRegistry{cfg: cfg.withDefaults()}
}

// modelPath is the on-disk location for one model: <dir>/<nf>.<backend>.json.
// The NF name keeps its catalog casing so names discovered from disk
// round-trip into requests and Reload calls unchanged.
func (r *ModelRegistry) modelPath(key entryKey) string {
	return filepath.Join(r.cfg.Dir, fmt.Sprintf("%s.%s.json", key.name, key.backend))
}

// Yala returns the Yala model for an NF, loading it from the model
// directory or training it on demand on first use.
func (r *ModelRegistry) Yala(name string) (*core.Model, error) {
	return r.yala.do(name, 0, func() (*core.Model, error) {
		return r.loadYala(entryKey{BackendYala, name})
	})
}

// SLOMO returns the SLOMO baseline model for an NF, loading or training
// it like Yala.
func (r *ModelRegistry) SLOMO(name string) (*slomo.Model, error) {
	return r.slomo.do(name, 0, func() (*slomo.Model, error) {
		return r.loadSLOMO(entryKey{BackendSLOMO, name})
	})
}

// Reload drops the cached model so the next Get re-reads the model
// directory. Callers also serving memoized responses computed with the
// old model must flush those too — Service.Reload does both.
func (r *ModelRegistry) Reload(backend Backend, name string) {
	switch backend {
	case BackendYala:
		r.yala.forget(name)
	case BackendSLOMO:
		r.slomo.forget(name)
	}
}

// loadYala reads the persisted model, or trains and persists one. An
// unreadable model file (e.g. truncated by a crash mid-write) also falls
// through to retraining, which rewrites it — a corrupt file must not
// permanently wedge an NF's serving path.
func (r *ModelRegistry) loadYala(key entryKey) (*core.Model, error) {
	if r.cfg.Dir != "" {
		if m, err := core.LoadModelFile(r.modelPath(key)); err == nil {
			return m, nil
		}
	}
	if r.trainHook != nil {
		r.trainHook(BackendYala, key.name)
	}
	// A fresh testbed per training keeps the registry concurrent-safe
	// (testbeds cache unsynchronized) and the result deterministic.
	tb := testbed.New(r.cfg.NIC, r.cfg.Seed)
	m, err := core.NewTrainer(tb, r.cfg.Train).Train(key.name)
	if err != nil {
		return nil, fmt.Errorf("serve: training yala/%s: %w", key.name, err)
	}
	r.persist(key, m.SaveFile)
	return m, nil
}

// loadSLOMO mirrors loadYala for the baseline.
func (r *ModelRegistry) loadSLOMO(key entryKey) (*slomo.Model, error) {
	if r.cfg.Dir != "" {
		if m, err := slomo.LoadModelFile(r.modelPath(key)); err == nil {
			return m, nil
		}
	}
	if r.trainHook != nil {
		r.trainHook(BackendSLOMO, key.name)
	}
	tb := testbed.New(r.cfg.NIC, r.cfg.Seed)
	m, err := slomo.Train(tb, key.name, r.cfg.SLOMOProfile, r.cfg.SLOMO)
	if err != nil {
		return nil, fmt.Errorf("serve: training slomo/%s: %w", key.name, err)
	}
	r.persist(key, m.SaveFile)
	return m, nil
}

// persist writes a model file atomically (temp + rename, so a crash
// mid-write never leaves a truncated model where a valid one is
// expected) and records rather than returns failures: the freshly
// trained in-memory model is still good, so the NF keeps serving.
func (r *ModelRegistry) persist(key entryKey, save func(string) error) {
	if r.cfg.Dir == "" {
		return
	}
	path := r.modelPath(key)
	tmp := path + ".tmp"
	err := save(tmp)
	if err == nil {
		err = os.Rename(tmp, path)
	} else {
		os.Remove(tmp)
	}
	if err != nil {
		r.statMu.Lock()
		r.persistFails++
		r.lastPersistErr = fmt.Sprintf("%s/%s: %v", key.backend, key.name, err)
		r.statMu.Unlock()
	}
}

// PersistFailures reports how many model persists have failed and the
// most recent failure.
func (r *ModelRegistry) PersistFailures() (uint64, string) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return r.persistFails, r.lastPersistErr
}

// ModelInfo describes one model the registry knows about.
type ModelInfo struct {
	NF      string  `json:"nf"`
	Backend Backend `json:"backend"`
	Loaded  bool    `json:"loaded"`
	OnDisk  bool    `json:"on_disk"`
}

// Models lists every model discovered in the model directory plus every
// model loaded (or trained) in memory, sorted by NF then backend.
func (r *ModelRegistry) Models() []ModelInfo {
	infos := map[entryKey]*ModelInfo{}
	if r.cfg.Dir != "" {
		ents, err := os.ReadDir(r.cfg.Dir)
		if err == nil {
			for _, de := range ents {
				name := de.Name()
				for _, b := range []Backend{BackendYala, BackendSLOMO} {
					suffix := fmt.Sprintf(".%s.json", b)
					if nf, ok := strings.CutSuffix(name, suffix); ok && nf != "" {
						infos[entryKey{b, nf}] = &ModelInfo{NF: nf, Backend: b, OnDisk: true}
					}
				}
			}
		}
	}
	loaded := make([]entryKey, 0)
	for _, name := range r.yala.resolved() {
		loaded = append(loaded, entryKey{BackendYala, name})
	}
	for _, name := range r.slomo.resolved() {
		loaded = append(loaded, entryKey{BackendSLOMO, name})
	}
	for _, key := range loaded {
		if info, ok := infos[key]; ok {
			info.Loaded = true
		} else {
			infos[key] = &ModelInfo{NF: key.name, Backend: key.backend, Loaded: true}
		}
	}
	out := make([]ModelInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NF != out[j].NF {
			return out[i].NF < out[j].NF
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}
