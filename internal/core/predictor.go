package core

import (
	"math"

	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// Competitor is a co-located NF's contention level as the online
// predictor sees it (§3): the aggregate pressure it exerts on the memory
// subsystem (its performance counters) and on each accelerator (queue
// count, per-request service time, offered request rate). Operators
// obtain these from each NF's offline solo profile.
type Competitor struct {
	Name     string
	Counters nicsim.Counters
	Accel    map[nicsim.AccelKind]AccelLoad
}

// CompetitorFromMeasurement derives a competitor description from a solo
// measurement of that NF at its traffic profile.
func CompetitorFromMeasurement(m nicsim.Measurement) Competitor {
	c := Competitor{Name: m.Name, Counters: m.Counters, Accel: map[nicsim.AccelKind]AccelLoad{}}
	for kind, st := range m.AccelStats {
		c.Accel[kind] = AccelLoad{
			Queues:     float64(st.Queues),
			ServiceSec: st.MeanServiceSec,
			OfferedReq: st.RequestRate,
		}
	}
	return c
}

// Prediction is the predictor's output: the end-to-end throughput plus
// the per-resource breakdown used for diagnosis.
type Prediction struct {
	Throughput float64
	Solo       float64
	// PerResource maps each modeled resource to the throughput the NF
	// would achieve if only that resource were contended.
	PerResource map[nicsim.Resource]float64
	// Bottleneck is the resource with the lowest per-resource throughput.
	Bottleneck nicsim.Resource
}

// Predict estimates the NF's throughput at the given traffic profile when
// co-located with the competitors: per-resource models produce individual
// throughputs, which execution-pattern composition combines (§3, §4.2).
func (m *Model) Predict(prof traffic.Profile, comps []Competitor) Prediction {
	solo := m.Solo.Predict(prof)
	pred := Prediction{
		Solo:        solo,
		PerResource: map[nicsim.Resource]float64{},
		Bottleneck:  nicsim.ResCPU,
	}
	if solo <= 0 {
		return pred
	}

	// Memory subsystem: aggregate competitor counters → black-box model.
	var agg nicsim.Counters
	for _, c := range comps {
		agg.Add(c.Counters)
	}
	memT := m.Mem.Predict(agg, prof, solo)
	pred.PerResource[nicsim.ResMemory] = memT
	drops := []float64{solo - memT}

	// Accelerators: white-box queueing model per kind, iterated in fixed
	// kind order — RTC composition sums floats over the drops, so a
	// map-order iteration would make predictions vary at the last ULP
	// between runs and break bit-identical replay.
	for _, kind := range nicsim.AccelKinds() {
		am, ok := m.Accels[kind]
		if !ok {
			continue
		}
		var loads []AccelLoad
		for _, c := range comps {
			if l, ok := c.Accel[kind]; ok && l.Queues > 0 {
				loads = append(loads, l)
			}
		}
		stage := am.PacketRate(prof.Get(am.Attr), loads)
		pred.PerResource[nicsim.AccelResource(kind)] = math.Min(stage, solo)
		drops = append(drops, math.Max(0, solo-stage))
	}

	pred.Throughput = Compose(ForPattern(m.Pattern), solo, drops)

	// Bottleneck: the resource whose individual limit is lowest, scanned
	// in fixed resource order so ties resolve identically every run.
	best := math.Inf(1)
	resOrder := []nicsim.Resource{nicsim.ResMemory}
	for _, kind := range nicsim.AccelKinds() {
		resOrder = append(resOrder, nicsim.AccelResource(kind))
	}
	for _, res := range resOrder {
		if t, ok := pred.PerResource[res]; ok && t < best {
			best = t
			pred.Bottleneck = res
		}
	}
	return pred
}

// PredictThroughput is the allocation-lean fast path for admission loops
// (placement.FeasibleBatch): it composes the end-to-end throughput only,
// skipping the per-resource map and bottleneck attribution Predict
// builds. A positive solo is trusted as this model's solo prediction at
// prof — batching callers memoize it across slots; pass a non-positive
// value to recompute. Predict and PredictThroughput agree exactly on the
// composed throughput.
func (m *Model) PredictThroughput(prof traffic.Profile, comps []Competitor, solo float64) float64 {
	if solo <= 0 {
		solo = m.Solo.Predict(prof)
	}
	if solo <= 0 {
		return 0
	}
	var agg nicsim.Counters
	for i := range comps {
		agg.Add(comps[i].Counters)
	}
	var dropBuf [4]float64
	var loadBuf [16]AccelLoad
	drops := append(dropBuf[:0], solo-m.Mem.Predict(agg, prof, solo))
	for _, kind := range nicsim.AccelKinds() {
		am, ok := m.Accels[kind]
		if !ok {
			continue
		}
		loads := loadBuf[:0]
		for i := range comps {
			if l, ok := comps[i].Accel[kind]; ok && l.Queues > 0 {
				loads = append(loads, l)
			}
		}
		stage := am.PacketRate(prof.Get(am.Attr), loads)
		drops = append(drops, math.Max(0, solo-stage))
	}
	return Compose(ForPattern(m.Pattern), solo, drops)
}

// PredictWith composes with an explicit strategy (for the sum/min
// baseline comparisons of §2.2.1 and Table 4).
func (m *Model) PredictWith(c Composition, prof traffic.Profile, comps []Competitor) Prediction {
	p := m.Predict(prof, comps)
	drops := make([]float64, 0, len(p.PerResource))
	for _, t := range p.PerResource {
		drops = append(drops, math.Max(0, p.Solo-t))
	}
	p.Throughput = Compose(c, p.Solo, drops)
	return p
}
