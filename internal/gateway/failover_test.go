package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/profiling"
	"repro/internal/serve"
	"repro/internal/slomo"
	"repro/pkg/yalaclient"
)

// TestFailoverKillMidLoadgen is the failover acceptance test: a replica
// dies while a load-generation run is in flight, and the client must
// observe zero request errors — in-flight requests to the dead replica
// retry on the survivor (passive marking) and the health loop keeps it
// out of rotation afterward.
func TestFailoverKillMidLoadgen(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, ts := testGateway(t, -1, a, b) // edge off: every request must route

	done := make(chan struct{})
	var rep serve.LoadgenReport
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = serve.Loadgen(serve.LoadgenConfig{
			URL:      ts.URL,
			Workers:  4,
			Requests: 20000,
			Profiles: 2,
		})
	}()

	// Let traffic reach both replicas, then kill one mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sa, _ := a.counts()
		sb, _ := b.counts()
		if sa > 200 && sb > 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loadgen never warmed both replicas")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.stop()
	<-done

	if runErr != nil {
		t.Fatalf("loadgen through a replica kill: %v", runErr)
	}
	if rep.Errors != 0 {
		t.Fatalf("client observed %d errors across the kill, want 0", rep.Errors)
	}
	if rep.Requests != 20000 {
		t.Fatalf("loadgen completed %d requests, want 20000", rep.Requests)
	}
	// The health check tripped: the dead replica is out of rotation.
	st, err := yalaclient.New(ts.URL).GatewayStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Replicas {
		if r.URL == b.url() && r.Healthy {
			t.Fatal("killed replica still marked healthy after the run")
		}
	}
	if g.retries.Load() == 0 {
		t.Fatal("no failover retries recorded — the kill was never exercised")
	}
}

// TestPendingReloadReplay: a reload fanned out while a replica is down
// is queued and replayed when the replica recovers, so it never rejoins
// serving a stale model.
func TestPendingReloadReplay(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	_, ts := testGateway(t, 0, a, b)

	b.stop()
	// Reload while b is down: the fan-out succeeds via a, queues b.
	status, body := post(t, ts.URL+"/v2/models/FlowStats/yala:reload", ``)
	if status != 200 {
		t.Fatalf("reload with one replica down: %d %s", status, body)
	}
	if _, ra := a.counts(); ra != 1 {
		t.Fatalf("live replica reloads = %d, want 1", ra)
	}
	st, err := yalaclient.New(ts.URL).GatewayStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := false
	for _, r := range st.Replicas {
		if r.URL == b.url() && r.PendingReloads == 1 {
			queued = true
		}
	}
	if !queued {
		t.Fatalf("missed fan-out not queued: %+v", st.Replicas)
	}

	// Recovery: the health loop (20ms probes) replays the reload.
	b.start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, rb := b.counts(); rb >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered replica never received the queued reload")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the queue drains.
	deadline = time.Now().Add(5 * time.Second)
	for {
		st, err := yalaclient.New(ts.URL).GatewayStats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		drained := true
		for _, r := range st.Replicas {
			if r.PendingReloads != 0 {
				drained = false
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending queue never drained: %+v", st.Replicas)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentRouteHealthHammer drives routing, health transitions
// and stats concurrently — the -race companion to the failover test. A
// replica flaps repeatedly while clients hammer the gateway; with one
// replica always alive, every request must still succeed.
func TestConcurrentRouteHealthHammer(t *testing.T) {
	a, b := newStubReplica(t, "a"), newStubReplica(t, "b")
	g, ts := testGateway(t, 64, a, b)
	_ = g

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			if i%2 == 0 {
				b.stop()
			} else {
				b.start()
			}
		}
	}()

	models := []string{"A", "B", "C", "D", "E", "F"}
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := yalaclient.New(ts.URL)
			for i := 0; i < 150; i++ {
				m := models[(w+i)%len(models)]
				if _, err := client.Predict(context.Background(), yalaclient.ModelID{NF: m}, "", yalaclient.PredictParams{}); err != nil {
					failures.Add(1)
					t.Logf("predict %s: %v", m, err)
				}
				if i%20 == 0 {
					if _, err := client.GatewayStats(context.Background()); err != nil {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed while a replica flapped (one replica was always up)", n)
	}
}

// quickServiceConfig is a minimal-cost real serving setup (tiny
// training plan, small regressor) for integration tests — accuracy is
// irrelevant, determinism and plumbing are the assertions.
func quickServiceConfig(dir string) serve.ServiceConfig {
	gbr := ml.GBRConfig{Trees: 25, LearningRate: 0.15, MaxDepth: 3, MinLeaf: 2, Subsample: 1, Seed: 1}
	train := core.DefaultTrainConfig()
	train.Seed = 1
	train.Plan = profiling.Random(12, 1)
	train.PatternProbes = 1
	train.GBR = gbr
	sl := slomo.DefaultConfig()
	sl.Seed = 1
	sl.Samples = 12
	sl.GBR = gbr
	return serve.ServiceConfig{
		Registry: serve.RegistryConfig{Dir: dir, Seed: 1, Train: train, SLOMO: sl},
		Workers:  2,
	}
}

// TestRealReplicasEndToEnd runs the whole stack with real serve
// replicas: in-process spawn over a shared model directory, routed
// predictions identical to a direct replica call, edge-cache hits
// byte-identical, and a reload fan-out that empties the affected
// entries on every replica.
func TestRealReplicasEndToEnd(t *testing.T) {
	reps, err := SpawnReplicas(2, quickServiceConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseReplicas(reps) })
	urls := []string{reps[0].URL, reps[1].URL}
	g, err := New(Config{Backends: urls, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()
	client := yalaclient.New(ts.URL)

	params := yalaclient.PredictParams{Competitors: []yalaclient.Competitor{{Name: "ACL"}}}
	viaGateway, err := client.Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "", params)
	if err != nil {
		t.Fatal(err)
	}
	// Both replicas answer identically: shared persisted models plus
	// deterministic measurement, so the gateway's routing choice is
	// invisible to clients.
	for i, u := range urls {
		direct, err := yalaclient.New(u).Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "", params)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		gw, _ := json.Marshal(viaGateway)
		dr, _ := json.Marshal(direct)
		if !bytes.Equal(gw, dr) {
			t.Fatalf("replica %d diverges from gateway response:\n%s\n%s", i, dr, gw)
		}
	}

	// The repeat is an edge hit and still identical.
	again, err := client.Predict(ctx, yalaclient.ModelID{NF: "FlowStats"}, "", params)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(viaGateway)
	b2, _ := json.Marshal(again)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("edge-cached response differs:\n%s\n%s", b1, b2)
	}

	// Aggregate stats see the fleet: summed predicts, unioned models.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests["predict"] == 0 || len(st.Models) == 0 {
		t.Fatalf("aggregate stats empty: %+v", st)
	}
	if st.Cache.Entries == 0 {
		t.Fatal("no replica cache entries after a served prediction")
	}

	// Reload fans out: every replica's FlowStats entries drop, so no
	// replica can serve a stale prediction afterward.
	if err := client.Reload(ctx, yalaclient.ModelID{NF: "FlowStats"}, "yala"); err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		stats := rep.Service().Stats()
		for _, m := range stats.Models {
			if m.NF == "FlowStats" && m.Backend == "yala" && m.Loaded {
				t.Fatalf("replica %d still holds the reloaded model in memory", i)
			}
		}
	}
	after, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache.Entries >= st.Cache.Entries {
		t.Fatalf("reload evicted nothing fleet-wide: %d → %d entries", st.Cache.Entries, after.Cache.Entries)
	}
}
