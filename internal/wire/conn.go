package wire

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// clientConn is one established, handshaken connection.
type clientConn struct {
	c  net.Conn
	fr *Framer
}

func (cc *clientConn) close() { cc.c.Close() }

// Pool is a small fixed-capacity pool of persistent client
// connections to one wire listener. Connections are checked out
// exclusively for one request/response exchange (requests on a
// connection are strictly serial, so responses never interleave),
// dialed lazily, handshaken once, and discarded on any transport
// error — the next request dials fresh.
type Pool struct {
	addr        string
	apiKey      string
	dialTimeout time.Duration
	idle        chan *clientConn
	nextID      atomic.Uint64
	closed      atomic.Bool
}

// NewPool builds a pool toward addr (host:port). maxIdle bounds the
// retained idle connections (≤0 means 4); more than maxIdle concurrent
// exchanges still work — the extras dial their own connection and the
// surplus is closed on release.
func NewPool(addr, apiKey string, maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &Pool{
		addr:        addr,
		apiKey:      apiKey,
		dialTimeout: 2 * time.Second,
		idle:        make(chan *clientConn, maxIdle),
	}
}

// Addr returns the pool's target address.
func (p *Pool) Addr() string { return p.addr }

// Close drops the idle connections. In-flight exchanges finish on
// their own connections and are discarded on release.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for {
		select {
		case cc := <-p.idle:
			cc.close()
		default:
			return
		}
	}
}

// dial establishes and handshakes one connection: Hello carrying the
// API key, expect HelloAck.
func (p *Pool) dial(ctx context.Context) (*clientConn, error) {
	d := net.Dialer{Timeout: p.dialTimeout}
	c, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrTransport, p.addr, err)
	}
	cc := &clientConn{c: c, fr: NewFramer(c)}
	if dl, ok := ctx.Deadline(); ok {
		c.SetDeadline(dl)
	} else {
		// I/O deadline on a live socket — inherently wall-clock; the
		// handshake timeout never feeds simulated or replayed state.
		//yalalint:ignore wallclock socket handshake deadline, real I/O not simulation state
		c.SetDeadline(time.Now().Add(p.dialTimeout))
	}
	buf := AppendHello(GetBuf(), p.apiKey)
	err = cc.fr.WriteFrame(TypeHello, 0, buf)
	PutBuf(buf)
	if err != nil {
		cc.close()
		return nil, err
	}
	f, err := cc.fr.ReadFrame()
	if err != nil {
		cc.close()
		return nil, fmt.Errorf("%w: hello: %v", ErrTransport, err)
	}
	if f.Type != TypeHelloAck {
		cc.close()
		return nil, fmt.Errorf("%w: hello answered with frame type %d", ErrTransport, f.Type)
	}
	c.SetDeadline(time.Time{})
	return cc, nil
}

// Do performs one request/response exchange: write a frame of the
// given type, read the answer, and hand it to handle before the
// connection is released (the frame's payload is only valid inside
// handle). Transport-level failures are wrapped with ErrTransport;
// handle's error is returned as-is. The connection deadline follows
// ctx's deadline when set.
func (p *Pool) Do(ctx context.Context, typ byte, payload []byte, handle func(Frame) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	var cc *clientConn
	select {
	case cc = <-p.idle:
	default:
		var err error
		if cc, err = p.dial(ctx); err != nil {
			return err
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		cc.c.SetDeadline(dl)
	} else {
		cc.c.SetDeadline(time.Time{})
	}
	id := p.nextID.Add(1)
	if err := cc.fr.WriteFrame(typ, id, payload); err != nil {
		cc.close()
		return err
	}
	f, err := cc.fr.ReadFrame()
	if err != nil {
		cc.close()
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if f.ID != id {
		cc.close()
		return fmt.Errorf("%w: response id %d for request %d", ErrTransport, f.ID, id)
	}
	herr := handle(f)
	if p.closed.Load() {
		cc.close()
		return herr
	}
	select {
	case p.idle <- cc:
	default:
		cc.close()
	}
	return herr
}
