package cluster

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
)

// Scheduler decides where an arriving NF goes. Choose returns the index
// of the NIC to place a on, or -1 to reject the arrival. Implementations
// must be deterministic given their construction seed — the comparison's
// reproducibility rests on it.
type Scheduler interface {
	Name() string
	Choose(f *Fleet, a placement.Arrival) (int, error)
}

// Policies lists the built-in scheduling policies in comparison order.
func Policies() []string {
	return []string{"random", "firstfit", "slomo", "yala"}
}

// NewScheduler constructs a built-in policy over the environment. The
// seed only matters to randomized policies.
func NewScheduler(policy string, env *Env, seed uint64) (Scheduler, error) {
	switch policy {
	case "random":
		return &randomFit{rng: sim.NewRNG(seed ^ 0x72616e646f6d)}, nil
	case "firstfit":
		return firstFit{}, nil
	case "yala":
		return predictFit{env: env, strat: placement.YalaAware, name: "yala"}, nil
	case "slomo":
		return predictFit{env: env, strat: placement.SLOMOAware, name: "slomo"}, nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (have %v)", policy, Policies())
}

// randomFit places on a uniformly random NIC with core capacity —
// contention-blind, the scheduling floor.
type randomFit struct {
	rng *sim.RNG
}

func (r *randomFit) Name() string { return "random" }

func (r *randomFit) Choose(f *Fleet, a placement.Arrival) (int, error) {
	fitting := make([]int, 0, len(f.NICs))
	for i := range f.NICs {
		if f.Fits(i) {
			fitting = append(fitting, i)
		}
	}
	if len(fitting) == 0 {
		return -1, nil
	}
	return fitting[r.rng.Intn(len(fitting))], nil
}

// firstFit places on the lowest-indexed NIC with core capacity — the
// classic bin-packing heuristic, which concentrates load (and therefore
// contention) on the front of the fleet.
type firstFit struct{}

func (firstFit) Name() string { return "firstfit" }

func (firstFit) Choose(f *Fleet, a placement.Arrival) (int, error) {
	for i := range f.NICs {
		if f.Fits(i) {
			return i, nil
		}
	}
	return -1, nil
}

// predictFit is prediction-guided best-fit: among NICs where the
// strategy's predictor deems the placement SLA-feasible
// (placement.Feasible), pick the tightest fit — fewest free cores — to
// consolidate load without breaching SLAs. No feasible NIC means the
// arrival is rejected outright: admission control in the paper's §7.5.1
// sense, applied fleet-wide.
type predictFit struct {
	env   *Env
	strat placement.Strategy
	name  string
}

func (p predictFit) Name() string { return p.name }

func (p predictFit) Choose(f *Fleet, a placement.Arrival) (int, error) {
	best, bestFree := -1, f.NICCores+1
	for i, n := range f.NICs {
		if !f.Fits(i) {
			continue
		}
		// An empty NIC is feasible by construction — alone, the NF runs
		// at its solo throughput — so no prediction is consulted. This
		// also mirrors placement.Place, which opens a fresh NIC without a
		// feasibility check. Best-fit ordering still prefers occupied
		// NICs (fewer free cores), so consolidation is tried first.
		if len(n.Tenants) > 0 {
			ok, err := p.env.feasible(n.arrivals(), a, p.strat)
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
		}
		if free := f.FreeCores(i); free < bestFree {
			best, bestFree = i, free
		}
	}
	return best, nil
}
