package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nicsim"
	"repro/internal/profiling"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 71)
	cfg := DefaultTrainConfig()
	cfg.Plan = profiling.Random(60, 5) // small: round-trip test only
	model, err := NewTrainer(tb, cfg).Train("NIDS")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Name != model.Name || loaded.Pattern != model.Pattern {
		t.Fatalf("metadata changed: %s/%v", loaded.Name, loaded.Pattern)
	}
	comp := Competitor{
		Counters: nicsim.Counters{L2CRD: 70e6, L2CWR: 30e6, MEMRD: 25e6, MEMWR: 10e6, WSS: 8 << 20},
		Accel: map[nicsim.AccelKind]AccelLoad{
			nicsim.AccelRegex: {Queues: 1, ServiceSec: 900e-9, OfferedReq: 0.4e6},
		},
	}
	for _, prof := range []traffic.Profile{traffic.Default, traffic.Default.With(traffic.AttrMTBR, 1000)} {
		a := model.Predict(prof, []Competitor{comp})
		b := loaded.Predict(prof, []Competitor{comp})
		if a.Throughput != b.Throughput || a.Bottleneck != b.Bottleneck {
			t.Fatalf("prediction changed after round trip: %v vs %v", a, b)
		}
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	tb := testbed.New(nicsim.BlueField2(), 72)
	cfg := DefaultTrainConfig()
	cfg.Plan = profiling.Random(40, 5)
	model, err := NewTrainer(tb, cfg).Train("ACL")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "acl.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Solo.Predict(traffic.Default); got != model.Solo.Predict(traffic.Default) {
		t.Fatalf("solo prediction changed: %v", got)
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadModel(strings.NewReader(`{"Name":"x"}`)); err == nil {
		t.Fatal("expected missing-submodel error")
	}
}
