package analysis

import (
	"fmt"
	"io"
)

// Report is the machine-readable result of one suite run — the shape
// `yala lint -json` emits.
type Report struct {
	// Findings is never null in JSON: an empty run marshals as [].
	Findings []Finding `json:"findings"`
	Packages int       `json:"packages"`
}

// DefaultAnalyzers returns fresh instances of the full suite — fresh
// because analyzers with a Finish hook carry per-run state.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Detmap(),
		Wallclock(),
		Boundedread(),
		Envelope(),
		Metricname(),
		Bodyclose(),
	}
}

// Run loads the packages matched by patterns (relative to modRoot) and
// runs every analyzer over them, returning findings after ignore
// filtering and stale-ignore promotion. A non-nil error means the suite
// could not run at all; findings alone never produce an error.
func Run(modRoot string, patterns []string, analyzers []*Analyzer) (Report, error) {
	loader, err := NewLoader(modRoot)
	if err != nil {
		return Report{}, err
	}
	dirs, err := loader.Expand(modRoot, patterns)
	if err != nil {
		return Report{}, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			return Report{}, err
		}
		pkgs = append(pkgs, pkg)
	}
	findings := RunPackages(loader, pkgs, analyzers, modRoot)
	return Report{Findings: findings, Packages: len(pkgs)}, nil
}

// RunPackages runs analyzers over already-loaded packages. root anchors
// the file paths in findings. Exposed separately so golden tests can
// load fixture packages under assumed import paths.
func RunPackages(loader *Loader, pkgs []*Package, analyzers []*Analyzer, root string) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	var ignores []*ignore
	lintRep := &Reporter{fset: loader.fset, root: root, analyzer: "yalalint"}
	for _, pkg := range pkgs {
		ignores = append(ignores, collectIgnores(pkg, known, lintRep)...)
		for _, a := range analyzers {
			rep := &Reporter{fset: pkg.Fset, root: root, analyzer: a.Name}
			a.Run(&Pass{Pkg: pkg, Loader: loader, r: rep})
			findings = append(findings, rep.findings...)
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		rep := &Reporter{fset: loader.fset, root: root, analyzer: a.Name}
		a.Finish(rep)
		findings = append(findings, rep.findings...)
	}
	findings = applyIgnores(findings, ignores)
	reportStale(ignores, lintRep)
	findings = append(findings, lintRep.findings...)
	findings = dedupe(findings)
	sortFindings(findings)
	if findings == nil {
		findings = []Finding{}
	}
	return findings
}

// dedupe drops exact-duplicate findings (a directive on line L also
// guarding L+1 can otherwise double-match nothing, but two analyzers or
// a re-walked node must not double-report one site).
func dedupe(fs []Finding) []Finding {
	seen := map[Finding]bool{}
	out := fs[:0]
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// WriteText renders findings one per line in file:line:col form.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
