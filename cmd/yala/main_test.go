package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/pkg/yalaclient"
)

// yalaBin is the binary under test, built once by TestMain — the e2e
// tests drive the real CLI, not in-process calls, so exit codes, flag
// parsing and process wiring are all covered.
var yalaBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "yala-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	yalaBin = filepath.Join(dir, "yala")
	build := exec.Command("go", "build", "-o", yalaBin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building yala: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the binary and returns stdout, stderr and the exit code.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(yalaBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// comparisonJSON is the shape assertion for -json outputs.
type comparisonJSON struct {
	Scenario struct {
		NICs     int    `json:"nics"`
		Arrivals int    `json:"arrivals"`
		Workload string `json:"workload"`
	} `json:"scenario"`
	Results []struct {
		Policy    string `json:"policy"`
		Arrivals  int    `json:"arrivals"`
		Admitted  int    `json:"admitted"`
		Rejected  int    `json:"rejected"`
		Rollbacks int    `json:"rollbacks"`
		P50       int64  `json:"decision_p50_ns"`
	} `json:"results"`
}

// stripLatencies zeroes the only nondeterministic fields so replay runs
// compare equal.
func (c *comparisonJSON) stripLatencies() {
	for i := range c.Results {
		c.Results[i].P50 = 0
	}
}

func readComparison(t *testing.T, path string) comparisonJSON {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var c comparisonJSON
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return c
}

// TestTraceRecordReplayE2E drives the record→replay loop through the
// built binary: exit codes, JSON shape, and determinism (two replays of
// one trace agree exactly on every scheduling outcome).
func TestTraceRecordReplayE2E(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "scenario.trace")

	stdout, stderr, code := run(t,
		"trace", "record", "-out", tracePath,
		"-arrivals", "12", "-classes", "bluefield2:2,pensando:1",
		"-workload", "diurnal", "-nfs", "FlowStats,ACL", "-seed", "9")
	if code != 0 {
		t.Fatalf("trace record exited %d: %s%s", code, stdout, stderr)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}

	replay := func(out string) comparisonJSON {
		stdout, stderr, code := run(t,
			"trace", "replay", "-in", tracePath,
			"-policies", "random,firstfit", "-json", out)
		if code != 0 {
			t.Fatalf("trace replay exited %d: %s%s", code, stdout, stderr)
		}
		c := readComparison(t, out)
		c.stripLatencies()
		return c
	}
	r1 := replay(filepath.Join(dir, "r1.json"))
	r2 := replay(filepath.Join(dir, "r2.json"))

	if r1.Scenario.NICs != 3 || r1.Scenario.Arrivals != 12 || r1.Scenario.Workload != "diurnal" {
		t.Fatalf("unexpected replayed scenario: %+v", r1.Scenario)
	}
	if len(r1.Results) != 2 {
		t.Fatalf("replay produced %d results, want 2", len(r1.Results))
	}
	for i, r := range r1.Results {
		if r.Arrivals != 12 || r.Admitted+r.Rejected+r.Rollbacks != 12 {
			t.Fatalf("result %+v does not account for all arrivals", r)
		}
		if r != r2.Results[i] {
			t.Fatalf("replays diverged:\n%+v\n%+v", r, r2.Results[i])
		}
	}

	// Replaying a missing or corrupt trace must exit nonzero.
	if _, _, code := run(t, "trace", "replay", "-in", filepath.Join(dir, "nope.trace")); code == 0 {
		t.Fatal("replay of missing trace exited 0")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := run(t, "trace", "replay", "-in", bad); code == 0 {
		t.Fatal("replay of corrupt trace exited 0")
	}
}

// TestClusterE2E runs a small mixed-fleet comparison through the binary
// and asserts table output, JSON shape and flag validation.
func TestClusterE2E(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cmp.json")
	stdout, stderr, code := run(t,
		"cluster", "-arrivals", "8", "-classes", "bluefield2:1,pensando:1",
		"-nfs", "FlowStats", "-policies", "firstfit", "-seed", "4", "-json", out)
	if code != 0 {
		t.Fatalf("cluster exited %d: %s%s", code, stdout, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("firstfit")) {
		t.Fatalf("table output missing policy row:\n%s", stdout)
	}
	c := readComparison(t, out)
	if c.Scenario.NICs != 2 || len(c.Results) != 1 || c.Results[0].Policy != "firstfit" {
		t.Fatalf("unexpected comparison: %+v", c)
	}

	if _, _, code := run(t, "cluster", "-workload", "bogus"); code == 0 {
		t.Fatal("unknown workload exited 0")
	}
	if _, _, code := run(t, "cluster", "-classes", "wat:3"); code == 0 {
		t.Fatal("unknown class exited 0")
	}
	if _, _, code := run(t, "cluster", "-classes", "bluefield2:1O"); code == 0 {
		t.Fatal("malformed class count exited 0")
	}
}

// TestServeLoadgenE2E boots the real server, drives it with the real
// load generator, and checks the operator surface: healthz, loadgen exit
// codes (success and recorded-error runs), stats shape, and the cluster
// endpoint's request validation.
func TestServeLoadgenE2E(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	url := "http://" + addr

	srv := exec.Command(yalaBin, "serve", "-addr", addr, "-models", filepath.Join(dir, "models"))
	var srvOut bytes.Buffer
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	healthy := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				healthy = true
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !healthy {
		t.Fatalf("server never became healthy:\n%s", srvOut.String())
	}

	stdout, stderr, code := run(t,
		"loadgen", "-url", url, "-n", "60", "-c", "4",
		"-nfs", "FlowStats", "-profiles", "2", "-maxcomp", "1", "-seed", "2")
	if code != 0 {
		t.Fatalf("loadgen exited %d:\n%s%s", code, stdout, stderr)
	}

	// A loadgen run against an NF outside the catalog records errors on
	// every request and must exit nonzero (the CI gate contract).
	if _, _, code := run(t, "loadgen", "-url", url, "-n", "4", "-c", "1", "-nfs", "NoSuchNF"); code == 0 {
		t.Fatal("loadgen with unknown NF exited 0")
	}

	// Operator surface through the supported SDK: stats counted the
	// loadgen traffic and the bad-NF errors.
	client := yalaclient.New(url)
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests["predict"] == 0 {
		t.Fatalf("stats recorded no predictions: %+v", stats)
	}
	if stats.Errors == 0 {
		t.Fatalf("stats recorded no errors despite bad-NF run: %+v", stats)
	}

	// The remote cluster path: `yala cluster -url` submits the scenario
	// to this server over /v2/cluster/runs via the SDK.
	remoteOut := filepath.Join(dir, "remote.json")
	stdout, stderr, code = run(t,
		"cluster", "-url", url, "-arrivals", "6", "-nics", "2",
		"-nfs", "FlowStats", "-policies", "firstfit", "-seed", "4", "-json", remoteOut)
	if code != 0 {
		t.Fatalf("remote cluster exited %d: %s%s", code, stdout, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("firstfit")) {
		t.Fatalf("remote cluster table missing policy row:\n%s", stdout)
	}
	if c := readComparison(t, remoteOut); c.Scenario.Arrivals != 6 || len(c.Results) != 1 {
		t.Fatalf("remote comparison: %+v", c)
	}

	// Every /v1 response must keep advertising its deprecation — the
	// compatibility contract this PR's CI step gates on.
	resp, err := http.Get(url + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dep := resp.Header.Get("Deprecation"); dep != "true" {
		t.Fatalf("/v1/models Deprecation header %q, want \"true\"", dep)
	}

	// The cluster endpoint validates class and workload specs as 400s —
	// on /v1 (flat envelope) and /v2 (structured envelope) alike.
	for _, path := range []string{"/v1/cluster/run", "/v2/cluster/runs"} {
		for _, body := range []string{
			`{"classes":[{"class":"wat","count":1}]}`,
			`{"workload":"bogus"}`,
		} {
			resp, err := http.Post(url+path, "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s %s: status %d, want 400", path, body, resp.StatusCode)
			}
		}
	}

	// The SDK surfaces the same validation as a typed APIError.
	if _, err := client.ClusterRun(context.Background(), yalaclient.ClusterRunParams{Workload: "bogus"}); err == nil {
		t.Fatal("SDK cluster run with bad workload returned nil error")
	}
}

// lintJSON is the shape assertion for `yala lint -json` output — the
// contract CI tooling parses.
type lintJSON struct {
	Findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	} `json:"findings"`
	Packages int `json:"packages"`
}

// TestLintE2E drives the static-analysis verb through the built binary:
// a clean package exits 0, a fixture with known violations exits
// nonzero, and -json writes the machine-readable report.
func TestLintE2E(t *testing.T) {
	stdout, stderr, code := run(t, "lint", "./internal/obs")
	if code != 0 {
		t.Fatalf("lint of clean package exited %d: %s%s", code, stdout, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("clean")) {
		t.Fatalf("clean lint run did not report clean:\n%s", stdout)
	}

	// Fixture directories are skipped by ./... walks but reachable as
	// explicit patterns — the bodyclose fixture has known leaks.
	dir := t.TempDir()
	out := filepath.Join(dir, "lint.json")
	stdout, stderr, code = run(t, "lint", "-json", out,
		"./internal/analysis/testdata/src/bodyclose")
	if code == 0 {
		t.Fatalf("lint of violation fixture exited 0: %s%s", stdout, stderr)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep lintJSON
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing %s: %v", out, err)
	}
	if rep.Packages != 1 || len(rep.Findings) == 0 {
		t.Fatalf("unexpected lint report: %+v", rep)
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "bodyclose" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Fatalf("malformed finding: %+v", f)
		}
		// Text output and the JSON report describe the same findings.
		if !bytes.Contains([]byte(stdout), []byte(f.Message)) {
			t.Fatalf("finding %q missing from text output:\n%s", f.Message, stdout)
		}
	}

	// Unknown patterns exit nonzero rather than reporting clean.
	if _, _, code := run(t, "lint", "./no/such/dir"); code == 0 {
		t.Fatal("lint of nonexistent pattern exited 0")
	}
}

// TestGatewayE2E boots the scale-out gateway with two in-process
// replicas through the real binary and drives it with the real load
// generator in -gateway mode: both replicas must serve traffic, a
// reload must fan out to both, and flag validation must exit nonzero.
func TestGatewayE2E(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	url := "http://" + addr

	gw := exec.Command(yalaBin, "gateway", "-addr", addr,
		"-replicas", "2", "-models", filepath.Join(dir, "models"))
	var gwOut bytes.Buffer
	gw.Stdout, gw.Stderr = &gwOut, &gwOut
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		gw.Process.Kill()
		gw.Wait()
	}()

	healthy := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				healthy = true
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !healthy {
		t.Fatalf("gateway never became healthy:\n%s", gwOut.String())
	}

	// The default 5-NF pool spreads across both replicas under the
	// deterministic slot-indexed rendezvous hash (pinned by
	// TestRoutingDefaultPoolSpreads in internal/gateway).
	stdout, stderr, code := run(t,
		"loadgen", "-url", url, "-gateway", "-n", "120", "-c", "4",
		"-profiles", "2", "-maxcomp", "1", "-seed", "2")
	if code != 0 {
		t.Fatalf("gateway loadgen exited %d:\n%s%s", code, stdout, stderr)
	}
	if !bytes.Contains([]byte(stdout), []byte("replica")) {
		t.Fatalf("-gateway report lacks the replica distribution:\n%s", stdout)
	}

	client := yalaclient.New(url)
	st, err := client.GatewayStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 2 {
		t.Fatalf("gateway reports %d replicas, want 2", len(st.Replicas))
	}
	for _, rep := range st.Replicas {
		if !rep.Healthy || rep.Requests == 0 {
			t.Fatalf("replica %s idle or unhealthy after loadgen: %+v", rep.URL, rep)
		}
	}

	// Reload fans out to both replicas.
	before := st
	if err := client.Reload(context.Background(), yalaclient.ModelID{NF: "FlowStats"}, "yala"); err != nil {
		t.Fatal(err)
	}
	st, err = client.GatewayStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Fanouts != before.Fanouts+1 {
		t.Fatalf("gateway fanouts %d → %d, want +1", before.Fanouts, st.Fanouts)
	}
	for i, rep := range st.Replicas {
		if rep.Fanouts != before.Replicas[i].Fanouts+1 {
			t.Fatalf("replica %s fanouts %d → %d, want +1", rep.URL, before.Replicas[i].Fanouts, rep.Fanouts)
		}
	}

	// Aggregate stats answer through the gateway (loadgen's hit-rate
	// snapshot depends on this).
	agg, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Requests["predict"] == 0 {
		t.Fatalf("aggregate stats counted no predictions: %+v", agg.Requests)
	}

	// Flag validation: -replicas without -models, and no replicas at
	// all, both exit nonzero.
	if _, _, code := run(t, "gateway", "-replicas", "2"); code == 0 {
		t.Fatal("gateway -replicas without -models exited 0")
	}
	if _, _, code := run(t, "gateway"); code == 0 {
		t.Fatal("gateway without replicas or backends exited 0")
	}
}
