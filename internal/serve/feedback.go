package serve

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/backend"
	"repro/internal/feedback"
	"repro/internal/traffic"
)

// IngestMeasurement is one ground-truth throughput report: the scenario
// it was measured under and the observed co-located throughput.
type IngestMeasurement struct {
	NF          string
	HW          string
	Backend     string
	Profile     ProfileSpec
	Competitors []CompetitorSpec
	MeasuredPPS float64
	Source      string
}

// IngestResult summarizes one ingest batch: how many measurements
// entered the feedback windows and how many were recorded under a
// quarantined source.
type IngestResult struct {
	Accepted    int `json:"accepted"`
	Quarantined int `json:"quarantined"`
}

// Ingest feeds ground-truth measurements into the online-feedback
// loop. Each measurement is paired with the live model's prediction
// for its scenario (through the shared predict cache, so repeated
// scenarios cost a lookup) and, when a shadow candidate is active for
// the key, the candidate's prediction — that is how candidates
// accumulate the ground-truth score that decides promotion. A
// malformed measurement fails the whole batch up front; ingestion is
// idempotent in aggregate terms (windows are bounded rings, a repeated
// batch just re-observes), so clients may retry freely.
func (s *Service) Ingest(ctx context.Context, items []IngestMeasurement) (IngestResult, error) {
	s.ingests.Add(1)
	for i, it := range items {
		if err := s.validateScenarioOn(it.HW, it.NF, it.Profile, it.Competitors, it.Backend); err != nil {
			s.errors.Add(1)
			return IngestResult{}, fmt.Errorf("measurements[%d]: %w", i, err)
		}
		if !(it.MeasuredPPS > 0) || math.IsInf(it.MeasuredPPS, 0) {
			s.errors.Add(1)
			return IngestResult{}, badRequestf("measurements[%d]: measured_pps must be positive and finite", i)
		}
	}
	return submit(ctx, s, func() (IngestResult, error) {
		var res IngestResult
		for _, it := range items {
			backendName, _ := ParseBackend(it.Backend)
			prof := it.Profile.Profile()
			comps := canonSpecs(it.Competitors)
			live, err := s.predictCached(backendName, it.HW, it.NF, prof, comps)
			if err != nil {
				return IngestResult{}, err
			}
			o := feedback.Observation{
				Key:      feedback.Key{NF: it.NF, HW: it.HW, Backend: string(backendName)},
				Scenario: scenarioKey(it.NF, prof, comps),
				Source:   it.Source,
				Measured: it.MeasuredPPS,
				LivePred: live.PredictedPPS,
			}
			if sm, ok := s.fb.ShadowModel(o.Key); ok {
				if sp, serr := s.shadowPredict(backendName, it.HW, it.NF, prof, comps, sm); serr == nil {
					o.ShadowPred = sp
					o.HasShadow = true
				}
			}
			r := s.fb.Observe(o)
			switch {
			case r.Quarantined:
				res.Quarantined++
			case r.Accepted:
				res.Accepted++
			}
		}
		return res, nil
	})
}

// shadowPredict answers one scenario with a specific (candidate)
// model instead of the registry's live one.
func (s *Service) shadowPredict(backendName Backend, hw, name string, prof traffic.Profile, specs []CompetitorSpec, m backend.Model) (float64, error) {
	b, ok := backend.Get(string(backendName))
	if !ok {
		return 0, badRequestf("unknown backend %q", backendName)
	}
	comps, err := s.competitors(hw, specs)
	if err != nil {
		return 0, err
	}
	pred, err := b.Predict(m, backend.Scenario{
		Profile:     prof,
		Competitors: comps,
		Solo: func() (float64, error) {
			sm, err := s.soloMeasurement(hw, name, prof)
			if err != nil {
				return 0, err
			}
			return sm.Throughput, nil
		},
	})
	if err != nil {
		return 0, err
	}
	return pred.PredictedPPS, nil
}

// Calibration bounds for feedback-driven retraining: the gate's
// measured/predicted ratio is applied as a DVFS-style frequency scale
// on the training NIC, clamped so one pathological window cannot
// train against absurd hardware.
const (
	minCalibrationScale = 0.25
	maxCalibrationScale = 4.0
)

// feedbackTrain is the controller's default Train callback: retrain
// the key's model through the backend interface against the key's NIC
// preset, frequency-scaled by the gate's calibration estimate. The
// trusted median measured/predicted ratio is exactly the uniform
// slowdown (or speedup) the live measurements exhibit, and the
// simulator expresses that as a DVFS factor — so the candidate learns
// the hardware the measurements describe, not the hardware the old
// model assumed.
func (s *Service) feedbackTrain(k feedback.Key, scale float64) (backend.Model, error) {
	b, ok := backend.Get(k.Backend)
	if !ok {
		return nil, fmt.Errorf("serve: unknown backend %q (have %s)", k.Backend, strings.Join(backend.Names(), ", "))
	}
	nic, err := s.hwNIC(k.HW)
	if err != nil {
		return nil, err
	}
	scale = math.Min(math.Max(scale, minCalibrationScale), maxCalibrationScale)
	base := nic.FreqScale
	if base <= 0 {
		base = 1
	}
	return b.Train(backend.TrainEnv{
		NIC:     nic.WithFrequencyScale(base * scale),
		Seed:    s.cfg.Registry.Seed,
		Options: s.cfg.Registry.trainOptions(k.Backend),
	}, k.NF)
}

// feedbackPromote is the controller's default Promote callback: the
// zero-downtime model swap. The registry persists the candidate and
// replaces the memoized model atomically (no request ever sees an
// empty slot), the response cache drops exactly the entries computed
// with the retired model, and the promote hook — when the service runs
// behind a gateway — fans the reload out to sibling replicas and
// evicts the gateway's edge cache for the NF.
func (s *Service) feedbackPromote(k feedback.Key, m backend.Model) error {
	if err := s.reg.Install(k.Backend, k.HW, k.NF, m); err != nil {
		return err
	}
	s.cache.EvictMatching(func(key string) bool {
		return reloadAffects(key, k.Backend, k.NF)
	})
	s.promoteMu.Lock()
	hook := s.promoteHook
	s.promoteMu.Unlock()
	if hook != nil {
		hook(k.Backend, k.HW, k.NF)
	}
	return nil
}

// SetPromoteHook registers a function observing every feedback-driven
// promotion, after the local model swap and cache eviction. The
// gateway uses it for fleet-wide reload fan-out.
func (s *Service) SetPromoteHook(hook func(backendName, hw, nf string)) {
	s.promoteMu.Lock()
	s.promoteHook = hook
	s.promoteMu.Unlock()
}

// Feedback exposes the service's online-feedback controller (stats,
// shadow inspection).
func (s *Service) Feedback() *feedback.Controller { return s.fb }
