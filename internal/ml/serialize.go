package ml

import (
	"encoding/json"
	"fmt"
)

// treeNodeJSON mirrors treeNode for serialization.
type treeNodeJSON struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
	Value     float64 `json:"v"`
}

// MarshalJSON implements json.Marshaler: a tree serializes as its flat
// node array.
func (t *Tree) MarshalJSON() ([]byte, error) {
	nodes := make([]treeNodeJSON, len(t.nodes))
	for i, n := range t.nodes {
		nodes[i] = treeNodeJSON{n.feature, n.threshold, n.left, n.right, n.value}
	}
	return json.Marshal(nodes)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var nodes []treeNodeJSON
	if err := json.Unmarshal(data, &nodes); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("ml: tree with no nodes")
	}
	t.nodes = make([]treeNode, len(nodes))
	for i, n := range nodes {
		if n.Left >= int32(len(nodes)) || n.Right >= int32(len(nodes)) {
			return fmt.Errorf("ml: tree node %d has out-of-range children", i)
		}
		t.nodes[i] = treeNode{n.Feature, n.Threshold, n.Left, n.Right, n.Value}
	}
	return nil
}

// gbrJSON mirrors GBR for serialization.
type gbrJSON struct {
	Bias  float64 `json:"bias"`
	Rate  float64 `json:"rate"`
	Trees []*Tree `json:"trees"`
}

// MarshalJSON implements json.Marshaler.
func (g *GBR) MarshalJSON() ([]byte, error) {
	return json.Marshal(gbrJSON{g.bias, g.rate, g.trees})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *GBR) UnmarshalJSON(data []byte) error {
	var v gbrJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.Rate <= 0 {
		return fmt.Errorf("ml: GBR with non-positive learning rate")
	}
	g.bias, g.rate, g.trees = v.Bias, v.Rate, v.Trees
	return nil
}
