package sim

import "container/heap"

// Event is a scheduled action in the simulation. The action runs when the
// engine clock reaches Time.
type Event struct {
	Time   float64
	Action func()

	index int // heap bookkeeping
	seq   uint64
}

// eventQueue implements heap.Interface ordered by (Time, insertion order)
// so simultaneous events fire in FIFO order, which keeps runs deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    float64
	queue  eventQueue
	nextID uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules action to run at absolute simulated time t. Scheduling in
// the past (t < Now) fires the event at the current time instead, which
// keeps the clock monotonic.
func (e *Engine) At(t float64, action func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{Time: t, Action: action, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules action to run delay seconds from now.
func (e *Engine) After(delay float64, action func()) *Event {
	return e.At(e.now+delay, action)
}

// Step fires the earliest pending event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.Time
	ev.Action()
	return true
}

// RunUntil fires events in time order until the clock would pass deadline
// or the queue drains. The clock is left at min(deadline, last event time).
func (e *Engine) RunUntil(deadline float64) {
	for len(e.queue) > 0 && e.queue[0].Time <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}
