package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBuckets is the default upper-bound set for request and stage
// latency histograms, in seconds: 50µs to 10s, roughly log-spaced. The
// low end matters here — warm predicts sit in the tens of microseconds,
// so a stock 5ms-floor bucket layout would flatten the whole signal
// into one bucket.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
// Bucket counts are per-bucket (non-cumulative) atomics; the sum is a
// CAS loop over the float bits. Under concurrency a snapshot's
// sum/count/buckets can be mutually off by in-flight observations —
// the usual Prometheus contract.
type Histogram struct {
	uppers  []float64 // ascending finite upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending finite
// bucket upper bounds; nil or empty selects LatencyBuckets. A trailing
// +Inf bound is dropped — the overflow bucket is always implicit.
func NewHistogram(uppers []float64) *Histogram {
	if len(uppers) == 0 {
		uppers = LatencyBuckets
	}
	us := make([]float64, 0, len(uppers))
	for _, u := range uppers {
		if !math.IsInf(u, +1) {
			us = append(us, u)
		}
	}
	sort.Float64s(us)
	return &Histogram{
		uppers: us,
		counts: make([]atomic.Uint64, len(us)+1), // last = +Inf overflow
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds, converting to
// the seconds base unit the bucket bounds use.
func (h *Histogram) ObserveSeconds(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CumulativeBuckets returns the histogram's finite bucket upper bounds
// and a cumulative count snapshot whose final element is the +Inf
// bucket (== total count). Callers that window a histogram — an
// autoscaler computing the p99 of the last tick — subtract two
// snapshots elementwise and feed the delta to BucketQuantile.
func (h *Histogram) CumulativeBuckets() ([]float64, []uint64) {
	return h.uppers, h.snapshotCumulative()
}

// snapshotCumulative returns the cumulative per-bucket counts,
// including the +Inf bucket as the final element.
func (h *Histogram) snapshotCumulative() []uint64 {
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum
}

// Quantile estimates the p-quantile (0..1) of the observed
// distribution from the bucket counts, with BucketQuantile's clamping
// semantics — it never returns NaN.
func (h *Histogram) Quantile(p float64) float64 {
	return BucketQuantile(h.uppers, h.snapshotCumulative(), p)
}

// BucketQuantile estimates the p-quantile from cumulative bucket
// counts. uppers holds the finite upper bounds; cum must have
// len(uppers)+1 elements, the last being the +Inf bucket's cumulative
// count (== total). The estimate interpolates linearly within the
// target bucket assuming a uniform spread, like Prometheus's
// histogram_quantile.
//
// Degenerate inputs clamp instead of going NaN: no observations → 0,
// p below 0 → the minimum estimate, p above 1 → the maximum, and a
// quantile landing in the +Inf bucket → the largest finite upper bound
// (or 0 when there are no finite buckets).
func BucketQuantile(uppers []float64, cum []uint64, p float64) float64 {
	if len(cum) == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(uppers) { // +Inf bucket (or all mass there)
		if len(uppers) == 0 {
			return 0
		}
		return uppers[len(uppers)-1]
	}
	lower, prev := 0.0, uint64(0)
	if i > 0 {
		lower, prev = uppers[i-1], cum[i-1]
	}
	in := cum[i] - prev
	if in == 0 {
		return uppers[i]
	}
	frac := (rank - float64(prev)) / float64(in)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return lower + (uppers[i]-lower)*frac
}
