package nicsim

import "repro/internal/sim"

// Counters are the seven hardware performance counters the paper trains
// memory models on (Table 11), sampled over a measurement interval.
// Rates are per second.
type Counters struct {
	IPC   float64 // instructions per cycle
	IRT   float64 // instructions retired per second
	L2CRD float64 // L2 data cache read accesses per second
	L2CWR float64 // L2 data cache write accesses per second
	MEMRD float64 // data memory (DRAM) read accesses per second
	MEMWR float64 // data memory (DRAM) write accesses per second
	WSS   float64 // working set size, bytes
}

// CAR is the cache access rate: the sum of cache read and write rates,
// the contention metric the paper plots throughout (Mref/s).
func (c Counters) CAR() float64 { return c.L2CRD + c.L2CWR }

// MemBW is the DRAM traffic rate (refs/s).
func (c Counters) MemBW() float64 { return c.MEMRD + c.MEMWR }

// Vector returns the counters as an ML feature vector in a fixed order.
func (c Counters) Vector() []float64 {
	return []float64{c.IPC, c.IRT, c.L2CRD, c.L2CWR, c.MEMRD, c.MEMWR, c.WSS}
}

// CounterNames labels Vector() components, in order.
var CounterNames = []string{"IPC", "IRT", "L2CRD", "L2CWR", "MEMRD", "MEMWR", "WSS"}

// Add accumulates other into c (used to aggregate competitor counters).
func (c *Counters) Add(other Counters) {
	c.IRT += other.IRT
	c.L2CRD += other.L2CRD
	c.L2CWR += other.L2CWR
	c.MEMRD += other.MEMRD
	c.MEMWR += other.MEMWR
	c.WSS += other.WSS
	// IPC is intensive, not additive; keep a demand-weighted proxy by
	// simple mean of nonzero terms.
	if other.IPC > 0 {
		if c.IPC == 0 {
			c.IPC = other.IPC
		} else {
			c.IPC = (c.IPC + other.IPC) / 2
		}
	}
}

// deriveCounters computes a workload's counters from the converged
// simulator state. The split of reads vs writes uses a 70/30 ratio typical
// of packet-processing table workloads.
func deriveCounters(cfg *Config, w *Workload, tput float64, ms memState, noise *sim.RNG) Counters {
	instrPerPkt := w.CPUSecPerPkt * cfg.CoreHz * 1.1 // ~1.1 IPC peak; instruction count is frequency-independent
	cyclesPerPkt := (w.CPUSecPerPkt/cfg.freqScale() + ms.memSec) * cfg.CoreHz * cfg.freqScale()
	var ipc float64
	if cyclesPerPkt > 0 {
		ipc = instrPerPkt / cyclesPerPkt
	}
	c := Counters{
		IPC:   ipc,
		IRT:   instrPerPkt * tput,
		L2CRD: 0.7 * ms.accessRate,
		L2CWR: 0.3 * ms.accessRate,
		MEMRD: 0.7 * ms.accessRate * ms.missRatio,
		MEMWR: 0.3 * ms.accessRate * ms.missRatio,
		WSS:   w.WSSBytes,
	}
	if noise != nil && cfg.MeasureNoise > 0 {
		c.IPC = noise.Jitter(c.IPC, cfg.MeasureNoise)
		c.IRT = noise.Jitter(c.IRT, cfg.MeasureNoise)
		c.L2CRD = noise.Jitter(c.L2CRD, cfg.MeasureNoise)
		c.L2CWR = noise.Jitter(c.L2CWR, cfg.MeasureNoise)
		c.MEMRD = noise.Jitter(c.MEMRD, cfg.MeasureNoise)
		c.MEMWR = noise.Jitter(c.MEMWR, cfg.MeasureNoise)
		c.WSS = noise.Jitter(c.WSS, cfg.MeasureNoise/2)
	}
	return c
}
