// Package testbed wires the simulated SmartNIC, the real NF
// implementations and the synthetic benchmarks into the experiment rig
// the paper's evaluation runs on: measure an NF's footprint under a
// traffic profile, co-run it with competitors or contention generators,
// and read back throughputs and counters.
package testbed

import (
	"fmt"

	"repro/internal/nf"
	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// Testbed binds one NIC configuration and a base seed. It caches NF
// footprint measurements per (NF, profile) since footprints are
// deterministic given both.
type Testbed struct {
	cfg  nicsim.Config
	seed uint64

	workloads map[workloadKey]*nicsim.Workload
	runSeq    uint64
}

type workloadKey struct {
	name    string
	profile traffic.Profile
}

// New returns a testbed on the given NIC model.
func New(cfg nicsim.Config, seed uint64) *Testbed {
	return &Testbed{
		cfg:       cfg,
		seed:      seed,
		workloads: map[workloadKey]*nicsim.Workload{},
	}
}

// Config returns the NIC hardware configuration.
func (tb *Testbed) Config() nicsim.Config { return tb.cfg }

// Workload measures (or returns the cached) hardware footprint of the
// named catalog NF under a traffic profile.
func (tb *Testbed) Workload(name string, prof traffic.Profile) (*nicsim.Workload, error) {
	key := workloadKey{name, prof}
	if w, ok := tb.workloads[key]; ok {
		return w, nil
	}
	n, err := nf.New(name)
	if err != nil {
		return nil, err
	}
	// Seed derived from the key so footprints are stable regardless of
	// measurement order.
	h := tb.seed
	for _, c := range name {
		h = h*31 + uint64(c)
	}
	h ^= uint64(prof.Flows)<<32 ^ uint64(prof.PktSize)<<16 ^ uint64(prof.MTBR)
	w, err := nf.Measure(n, prof, h)
	if err != nil {
		return nil, err
	}
	tb.workloads[key] = w
	return w, nil
}

// Run co-locates workloads on a fresh NIC instance (distinct measurement
// seed per run) and returns their measurements in input order.
func (tb *Testbed) Run(ws ...*nicsim.Workload) ([]nicsim.Measurement, error) {
	tb.runSeq++
	nic := nicsim.New(tb.cfg, tb.seed+tb.runSeq*0x9e3779b9)
	return nic.Run(ws...)
}

// RunSolo measures one workload alone.
func (tb *Testbed) RunSolo(w *nicsim.Workload) (nicsim.Measurement, error) {
	ms, err := tb.Run(w)
	if err != nil {
		return nicsim.Measurement{}, err
	}
	return ms[0], nil
}

// SoloNF measures the named NF alone under a profile.
func (tb *Testbed) SoloNF(name string, prof traffic.Profile) (nicsim.Measurement, error) {
	w, err := tb.Workload(name, prof)
	if err != nil {
		return nicsim.Measurement{}, err
	}
	return tb.RunSolo(w)
}

// WithMemBench co-runs the target workload with mem-bench at the given
// cache access rate (refs/s) and working-set size, returning the target's
// measurement.
func (tb *Testbed) WithMemBench(target *nicsim.Workload, car, wss float64) (nicsim.Measurement, error) {
	ms, err := tb.Run(target, nfbench.MemBench(car, wss))
	if err != nil {
		return nicsim.Measurement{}, err
	}
	return ms[0], nil
}

// WithRegexBench co-runs the target with regex-bench at the given request
// rate, request size and MTBR, returning both measurements (target first).
func (tb *Testbed) WithRegexBench(target *nicsim.Workload, reqRate, bytesPerReq, mtbr float64) ([]nicsim.Measurement, error) {
	return tb.Run(target, nfbench.RegexBench(reqRate, bytesPerReq, mtbr, 1))
}

// MemContention describes a mem-bench setting used across profiling and
// the experiments.
type MemContention struct {
	CAR float64 // target cache access rate, refs/s
	WSS float64 // working-set size, bytes
}

// String renders the contention level.
func (c MemContention) String() string {
	return fmt.Sprintf("car=%.0fMref/s wss=%.1fMB", c.CAR/1e6, c.WSS/(1<<20))
}

// MemContentionBounds is the range profiling samples from, matching the
// paper's figures (CAR up to ~250 Mref/s, WSS 0.5–16 MB).
var MemContentionBounds = struct{ CARLo, CARHi, WSSLo, WSSHi float64 }{
	CARLo: 5e6, CARHi: 250e6, WSSLo: 0.5 * (1 << 20), WSSHi: 16 * (1 << 20),
}
