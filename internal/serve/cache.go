package serve

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// cacheShards is the shard count; a power of two so the hash maps to a
// shard with a mask. 16 shards keep lock contention negligible at the
// concurrency levels the worker pool allows.
const cacheShards = 16

// Cache is a sharded LRU for prediction responses. Predictions are
// deterministic functions of (backend, NF, competitor multiset, traffic
// profile) given the loaded models, so entries never go stale under a
// fixed model set; capacity is the only eviction pressure. Swapping a
// model (Service.Reload) evicts exactly the entries computed with it
// (EvictMatching).
type Cache struct {
	shards [cacheShards]cacheShard
	seed   maphash.Seed

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

// cacheEntry is one resident key/value pair.
type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding up to capacity entries across all
// shards. Non-positive capacities disable caching (every Get misses).
// Capacity is apportioned per shard (capacity/16, minimum 1), so small
// capacities round up to one entry per shard — an effective floor of 16
// — and non-multiples of 16 round down per shard.
func NewCache(capacity int) *Cache {
	c := &Cache{seed: maphash.MakeSeed()}
	per := capacity / cacheShards
	if capacity > 0 && per == 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:   per,
			ll:    list.New(),
			items: map[string]*list.Element{},
		}
	}
	return c
}

// shard maps a key to its shard.
func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShards-1)]
}

// Get returns the cached value for key, if resident, counting the
// lookup in the hit/miss stats. API entry points use Get; internal
// re-checks behind an already-counted Get use getQuiet so one request
// counts once.
func (c *Cache) Get(key string) (any, bool) {
	return c.lookup(key, true)
}

// getQuiet is Get without stats accounting (recency still refreshes).
func (c *Cache) getQuiet(key string) (any, bool) {
	return c.lookup(key, false)
}

func (c *Cache) lookup(key string, count bool) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		if count {
			c.misses.Add(1)
		}
		return nil, false
	}
	s.ll.MoveToFront(el)
	if count {
		c.hits.Add(1)
	}
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the shard's least-recently-used
// entry when over capacity.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key, val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// EvictMatching removes every resident entry whose key satisfies match
// and reports how many were dropped. Targeted invalidation (a model
// reload touching one backend+NF) uses this instead of Flush so entries
// computed from unrelated models keep serving warm. Dropped entries do
// not count toward the eviction stat — that tracks capacity pressure.
func (c *Cache) EvictMatching(match func(key string) bool) int {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.items {
			if match(key) {
				s.ll.Remove(el)
				delete(s.items, key)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// Flush drops every resident entry (hit/miss counters are kept).
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.items)
		s.mu.Unlock()
	}
}

// Len is the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Hits, Misses and Evictions read the individual counters without the
// per-shard locking Stats' entry count needs — the /metrics exposition
// funcs read them at every scrape.
func (c *Cache) Hits() uint64      { return c.hits.Load() }
func (c *Cache) Misses() uint64    { return c.misses.Load() }
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries:   c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
