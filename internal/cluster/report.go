package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Comparison is the result of running one scenario under several
// policies on a shared environment.
type Comparison struct {
	Scenario Scenario       `json:"scenario"`
	Results  []PolicyResult `json:"results"`
}

// Run generates the scenario's stream once and replays it under each
// named policy on the shared environment, collecting the comparison. One
// environment means one model load per (class, NF) (via the ModelSource)
// and one ground-truth measurement per distinct co-location per class
// across all policies. The context cancels the comparison between
// events.
func Run(ctx context.Context, env *Env, sc Scenario, policies []string) (Comparison, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Comparison{}, err
	}
	return RunStream(ctx, env, sc, sc.Stream(), policies)
}

// RunStream replays an explicit tenant stream — typically decoded from a
// recorded trace — under each named policy. Every policy sees the
// identical stream, so per-policy outcome differences are attributable
// to scheduling alone, and replaying a recorded trace reproduces the
// comparison exactly (decision latencies aside).
func RunStream(ctx context.Context, env *Env, sc Scenario, stream []TenantSpec, policies []string) (Comparison, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return Comparison{}, err
	}
	if len(policies) == 0 {
		policies = Policies()
	}
	if !sc.Online {
		if err := env.Prewarm(ctx, sc, policies); err != nil {
			return Comparison{}, err
		}
	}
	cmp := Comparison{Scenario: sc}
	for _, p := range policies {
		penv := env
		if sc.Online {
			// Online runs mutate per-class model sets and solo baselines
			// (promotion is the point), so each policy gets a fresh clone
			// of the environment instead of inheriting a prior policy's
			// recalibrated state. Model loads still share the ModelSource.
			penv = env.fresh()
			if err := penv.Prewarm(ctx, sc, []string{p}); err != nil {
				return Comparison{}, err
			}
		}
		sched, err := NewScheduler(p, penv, sc.Seed)
		if err != nil {
			return Comparison{}, err
		}
		res, err := penv.RunPolicyStream(ctx, sc, stream, sched)
		if err != nil {
			return Comparison{}, fmt.Errorf("cluster: policy %s: %w", p, err)
		}
		cmp.Results = append(cmp.Results, res)
	}
	return cmp, nil
}

// FleetDesc renders the scenario's fleet declaration — "16 NICs" or
// "16 NICs [bluefield2:12 pensando:4]" — for the comparison-table
// header and CLI status lines.
func (sc Scenario) FleetDesc() string {
	if len(sc.Classes) == 0 {
		return fmt.Sprintf("%d NICs", sc.NICs)
	}
	parts := make([]string, len(sc.Classes))
	for i, cs := range sc.Classes {
		parts[i] = cs.String()
	}
	return fmt.Sprintf("%d NICs [%s]", sc.NICs, strings.Join(parts, " "))
}

// Table renders the policy comparison for the CLI.
func (c Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s, %d %s arrivals, %d NFs × %d profiles, drift %.0f%%, SLA %.0f–%.0f%%, seed %d\n",
		c.Scenario.FleetDesc(), c.Scenario.Arrivals, c.Scenario.Workload,
		len(c.Scenario.NFs), c.Scenario.Profiles,
		100*c.Scenario.DriftProb, 100*c.Scenario.SLALo, 100*c.Scenario.SLAHi, c.Scenario.Seed)
	fmt.Fprintf(&b, "%-10s %9s %9s %10s %9s %9s %11s %6s %10s %10s\n",
		"policy", "admitted", "rejected", "rollbacks", "migrated", "evicted", "violations", "util", "p50", "p99")
	for _, r := range c.Results {
		fmt.Fprintf(&b, "%-10s %9d %9d %10d %9d %9d %11d %5.1f%% %10v %10v\n",
			r.Policy, r.Admitted, r.Rejected, r.Rollbacks, r.Migrations, r.Evictions,
			r.Violations, 100*r.AvgUtilization,
			r.DecisionP50.Round(time.Microsecond), r.DecisionP99.Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}
