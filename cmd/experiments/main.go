// Command experiments regenerates the paper's tables and figures on the
// simulated testbed and prints them in paper-style form.
//
// Usage:
//
//	experiments [-run id] [-scale f] [-seed n]
//
// With no -run flag every experiment runs in paper order. -scale trades
// sample counts for runtime (1.0 = full protocol).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id (fig1..fig8, table2..table9); empty = all")
	scale := flag.Float64("scale", 1.0, "protocol scale factor (sample counts)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	lab := experiments.NewLab(*seed, *scale)
	start := time.Now()
	if *run != "" {
		rep, err := experiments.ByID(lab, *run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(rep)
	} else {
		for _, id := range experiments.IDs() {
			rep, err := experiments.ByID(lab, id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(rep)
		}
	}
	fmt.Printf("(completed in %s, scale %.2f, seed %d)\n", time.Since(start).Round(time.Second), *scale, *seed)
}
