package serve

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Cluster-run request bounds. A comparison run is a batch job — tens of
// seconds of simulation for the largest accepted shapes — so the server
// caps the scenario rather than letting one request monopolize it.
const (
	maxClusterNICs       = 256
	maxClusterArrivals   = 5000
	maxClusterProfiles   = 64
	maxClusterClassCores = 1024
)

// ClusterRunRequest asks the server to run a fleet-orchestration
// scenario under several scheduling policies and return the comparison.
// Zero values take the cluster package's defaults; Policies empty means
// all built-in policies.
type ClusterRunRequest struct {
	NICs int `json:"nics,omitempty"`
	// Classes declares a heterogeneous fleet (ordered class:count
	// slices, optional per-NIC core override); empty means NICs × the
	// server's base hardware class. Workload selects the trace-generator
	// family (churn, diurnal, flashcrowd, heavytail); empty means churn.
	Classes      []cluster.ClassSpec `json:"classes,omitempty"`
	Workload     string              `json:"workload,omitempty"`
	Arrivals     int                 `json:"arrivals,omitempty"`
	Seed         uint64              `json:"seed,omitempty"`
	NFs          []string            `json:"nfs,omitempty"`
	Policies     []string            `json:"policies,omitempty"`
	Profiles     int                 `json:"profiles,omitempty"`
	MeanIAT      float64             `json:"mean_iat,omitempty"`
	MeanLifetime float64             `json:"mean_lifetime,omitempty"`
	// DriftProb is a pointer because 0 (no drift) must stay
	// distinguishable from "use the default drift rate".
	DriftProb *float64 `json:"drift_prob,omitempty"`
	SLALo     float64  `json:"sla_lo,omitempty"`
	SLAHi     float64  `json:"sla_hi,omitempty"`
	// ShiftAt/ShiftScale apply a mid-run hardware shift (ground truth
	// moves to a frequency-scaled environment at the given time); Online
	// closes the feedback loop so prediction-guided policies retrain and
	// promote against the shifted measurements mid-run.
	ShiftAt    float64 `json:"shift_at,omitempty"`
	ShiftScale float64 `json:"shift_scale,omitempty"`
	Online     bool    `json:"online,omitempty"`
}

// ClusterPoliciesResponse lists the scheduling policies the server runs.
type ClusterPoliciesResponse struct {
	Policies []string `json:"policies"`
}

// scenario resolves the request into a validated cluster scenario.
func (r ClusterRunRequest) scenario() (cluster.Scenario, error) {
	if r.NICs < 0 || r.NICs > maxClusterNICs {
		return cluster.Scenario{}, badRequestf("nics %d out of range [0, %d]", r.NICs, maxClusterNICs)
	}
	total := 0
	for i, cs := range r.Classes {
		if _, err := cluster.ClassConfig(cs.Class); err != nil {
			return cluster.Scenario{}, badRequestf("classes[%d]: %v", i, err)
		}
		if cs.Count <= 0 {
			return cluster.Scenario{}, badRequestf("classes[%d]: count %d must be positive", i, cs.Count)
		}
		if cs.Cores < 0 || cs.Cores > maxClusterClassCores {
			return cluster.Scenario{}, badRequestf("classes[%d]: cores %d out of range [0, %d]", i, cs.Cores, maxClusterClassCores)
		}
		total += cs.Count
	}
	if total > maxClusterNICs {
		return cluster.Scenario{}, badRequestf("classes declare %d NICs, above the limit %d", total, maxClusterNICs)
	}
	if r.Workload != "" && !slices.Contains(cluster.Workloads(), r.Workload) {
		return cluster.Scenario{}, badRequestf("unknown workload %q (have %v)", r.Workload, cluster.Workloads())
	}
	if r.Arrivals < 0 || r.Arrivals > maxClusterArrivals {
		return cluster.Scenario{}, badRequestf("arrivals %d out of range [0, %d]", r.Arrivals, maxClusterArrivals)
	}
	if r.Profiles < 0 || r.Profiles > maxClusterProfiles {
		return cluster.Scenario{}, badRequestf("profiles %d out of range [0, %d]", r.Profiles, maxClusterProfiles)
	}
	for i, name := range r.NFs {
		if err := validNF(name); err != nil {
			return cluster.Scenario{}, fmt.Errorf("nfs[%d]: %w", i, err)
		}
	}
	for i, p := range r.Policies {
		if !slices.Contains(cluster.Policies(), p) {
			return cluster.Scenario{}, badRequestf("policies[%d]: unknown policy %q (have %v)", i, p, cluster.Policies())
		}
	}
	if r.SLALo < 0 || r.SLALo > 1 || r.SLAHi < 0 || r.SLAHi > 1 {
		return cluster.Scenario{}, badRequestf("SLA range [%g, %g] invalid", r.SLALo, r.SLAHi)
	}
	if r.MeanIAT < 0 || r.MeanLifetime < 0 {
		return cluster.Scenario{}, badRequestf("mean_iat %g / mean_lifetime %g must not be negative", r.MeanIAT, r.MeanLifetime)
	}
	sc := cluster.Scenario{
		NICs:         r.NICs,
		Classes:      r.Classes,
		Workload:     r.Workload,
		Arrivals:     r.Arrivals,
		Seed:         r.Seed,
		NFs:          r.NFs,
		Profiles:     r.Profiles,
		MeanIAT:      r.MeanIAT,
		MeanLifetime: r.MeanLifetime,
		SLALo:        r.SLALo,
		SLAHi:        r.SLAHi,
		ShiftAt:      r.ShiftAt,
		ShiftScale:   r.ShiftScale,
		Online:       r.Online,
	}
	if r.DriftProb != nil {
		if *r.DriftProb < 0 || *r.DriftProb > 1 {
			return cluster.Scenario{}, badRequestf("drift_prob %g out of range [0, 1]", *r.DriftProb)
		}
		sc.DriftProb = *r.DriftProb
	} else {
		sc.DriftProb = cluster.DefaultDriftProb
	}
	// Validate what will actually run, not the raw request: defaults can
	// produce an invalid combination (e.g. sla_lo above the defaulted
	// sla_hi), and that is still the client's doing — a 400, not a 422.
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return cluster.Scenario{}, badRequestf("%v", err)
	}
	return sc, nil
}

// ClusterRun executes a fleet-orchestration comparison with the
// service's model registry as the shared model source: every model loads
// (or quick-trains) once and is reused across policies and across runs.
// The run executes on the caller's goroutine — it is a batch job, not a
// prediction unit, so it must not occupy the worker pool that bounds
// request-path compute. Instead it is bounded by its own single-slot
// semaphore (a second run waits its turn or gives up with the caller's
// context), and the run itself stops at the next event once the caller
// goes away.
func (s *Service) ClusterRun(ctx context.Context, req ClusterRunRequest) (cluster.Comparison, error) {
	s.clusterRuns.Add(1)
	sc, err := req.scenario()
	if err != nil {
		s.errors.Add(1)
		return cluster.Comparison{}, err
	}
	// Same closed-service contract as the worker-pool paths: after Close
	// the request fails with ErrClosed (HTTP 503) instead of starting a
	// multi-second simulation on a shutting-down service.
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		return cluster.Comparison{}, ErrClosed
	}
	select {
	case s.clusterSem <- struct{}{}:
		defer func() { <-s.clusterSem }()
	case <-ctx.Done():
		return cluster.Comparison{}, ctx.Err()
	}
	regCfg := s.cfg.Registry.withDefaults()
	env := cluster.NewEnv(regCfg.NIC, sc.Seed, s.reg)
	// Scheduler telemetry (decision latency, slots scanned) lands in the
	// server's /metrics; the whole run is the request's predict stage.
	env.SetObs(s.obs)
	sp := obs.StartSpan(ctx, "predict")
	cmp, err := cluster.Run(ctx, env, sc, req.Policies)
	sp.End()
	if err != nil {
		// A run abandoned by its own caller is a 499, not a server error.
		if !callerCanceled(ctx, err) {
			s.errors.Add(1)
		}
		return cluster.Comparison{}, err
	}
	return cmp, nil
}
