package analysis

import (
	"go/ast"
	"strings"
)

// wallclockFuncs are the time package functions that read the host
// clock. time.Sleep is deliberately absent: it does not produce a value
// that can leak into replayed state, and the wire client legitimately
// backs off.
var wallclockFuncs = []string{"Now", "Since", "Until"}

// Wallclock flags wall-clock reads (time.Now, time.Since, time.Until)
// and any import of math/rand in determinism-critical packages. The
// simulator owns time (sim.Engine's virtual clock) and randomness
// (sim's splitmix64 streams); host time or the global rand source in
// these packages makes a replay diverge from its recording. Real-I/O
// exceptions (socket deadlines) are annotated, not exempted wholesale.
func Wallclock(critical ...string) *Analyzer {
	if critical == nil {
		critical = DefaultCriticalPackages
	}
	return &Analyzer{
		Name: "wallclock",
		Doc:  "forbids time.Now/Since/Until and math/rand in determinism-critical packages",
		Run: func(pass *Pass) {
			if !inPackages(pass, critical) {
				return
			}
			for _, f := range pass.Pkg.Files {
				for _, imp := range f.Imports {
					switch strings.Trim(imp.Path.Value, `"`) {
					case "math/rand", "math/rand/v2":
						pass.Reportf(imp.Pos(), "import of %s in a determinism-critical package; use the sim package's seeded RNG", imp.Path.Value)
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					for _, fn := range wallclockFuncs {
						if pass.usesPkgFunc(f, sel, "time", fn) {
							pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a determinism-critical package; use the engine's virtual clock", fn)
						}
					}
					return true
				})
			}
		},
	}
}
