package nicsim

import (
	"math"
	"testing"

	"repro/internal/sim"
)

var accelCfg = AccelConfig{BaseSec: 200e-9, PerByteSec: 0.1e-9, PerMatchSec: 300e-9, Jitter: 0.05}

func TestAccelSingleUserUnderload(t *testing.T) {
	// Offered well under capacity: completions track offered rate.
	users := []accelUser{{offered: 1e6, bytes: 100, matches: 0, queues: 1}}
	res := simulateAccel(accelCfg, users, sim.NewRNG(1), 50000)
	if rel := math.Abs(res[0].completionRate-1e6) / 1e6; rel > 0.05 {
		t.Fatalf("completion %v, want ~1e6 (rel err %v)", res[0].completionRate, rel)
	}
}

func TestAccelSingleUserSaturation(t *testing.T) {
	// service ~ 200ns + 10ns = 210ns -> capacity ~4.76M req/s.
	users := []accelUser{{offered: 50e6, bytes: 100, matches: 0, queues: 1}}
	res := simulateAccel(accelCfg, users, sim.NewRNG(2), 50000)
	capacity := 1.0 / 210e-9
	if rel := math.Abs(res[0].completionRate-capacity) / capacity; rel > 0.08 {
		t.Fatalf("completion %v, want ~%v", res[0].completionRate, capacity)
	}
}

func TestAccelEqualQueuesEqualEquilibrium(t *testing.T) {
	// Fig. 4's key observation: two saturated users with equal queue
	// counts converge to the same throughput even with different
	// service times.
	users := []accelUser{
		{offered: 50e6, bytes: 100, matches: 0, queues: 1},
		{offered: 50e6, bytes: 1000, matches: 2, queues: 1},
	}
	res := simulateAccel(accelCfg, users, sim.NewRNG(3), 80000)
	a, b := res[0].completionRate, res[1].completionRate
	if a <= 0 || b <= 0 {
		t.Fatalf("zero completion: %v %v", a, b)
	}
	if rel := math.Abs(a-b) / a; rel > 0.05 {
		t.Fatalf("equilibrium rates differ: %v vs %v", a, b)
	}
}

func TestAccelQueueWeighting(t *testing.T) {
	// A user with 3 queues gets ~3x the saturated share of a 1-queue user.
	users := []accelUser{
		{offered: 50e6, bytes: 100, matches: 0, queues: 3},
		{offered: 50e6, bytes: 100, matches: 0, queues: 1},
	}
	res := simulateAccel(accelCfg, users, sim.NewRNG(4), 80000)
	ratio := res[0].completionRate / res[1].completionRate
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("queue weight ratio %v, want ~3", ratio)
	}
}

func TestAccelLinearDeclineWithCompetitorRate(t *testing.T) {
	// Fig. 4's O1: saturated target throughput declines roughly linearly
	// as the open competitor's arrival rate grows, until equilibrium.
	var rates []float64
	serviceSec := 210e-9
	capacity := 1.0 / serviceSec
	for _, lam := range []float64{0, 0.2, 0.4, 0.6} {
		users := []accelUser{
			{offered: 50e6, bytes: 100, matches: 0, queues: 1}, // saturated target
			{offered: lam * capacity, bytes: 100, matches: 0, queues: 1},
		}
		res := simulateAccel(accelCfg, users, sim.NewRNG(5), 60000)
		rates = append(rates, res[0].completionRate)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] >= rates[i-1] {
			t.Fatalf("target rate did not decline: %v", rates)
		}
	}
	// Expected drop between consecutive 0.2-capacity steps is ~0.2·capacity.
	drop1 := rates[0] - rates[1]
	drop2 := rates[1] - rates[2]
	if drop1 <= 0 || math.Abs(drop2-drop1)/drop1 > 0.5 {
		t.Fatalf("decline not roughly linear: drops %v %v (rates %v)", drop1, drop2, rates)
	}
}

func TestAccelEquilibriumFloor(t *testing.T) {
	// Fig. 4's O2: past saturation, more competitor arrivals do not
	// reduce the target further.
	mk := func(lam float64) float64 {
		users := []accelUser{
			{offered: 50e6, bytes: 100, matches: 0, queues: 1},
			{offered: lam, bytes: 100, matches: 0, queues: 1},
		}
		res := simulateAccel(accelCfg, users, sim.NewRNG(6), 60000)
		return res[0].completionRate
	}
	atSat := mk(20e6)
	wayPast := mk(45e6)
	if rel := math.Abs(atSat-wayPast) / atSat; rel > 0.05 {
		t.Fatalf("equilibrium floor violated: %v vs %v", atSat, wayPast)
	}
}

func TestAccelSojournGrowsWithContention(t *testing.T) {
	solo := simulateAccel(accelCfg, []accelUser{
		{offered: 1e6, bytes: 100, queues: 1},
	}, sim.NewRNG(7), 40000)
	contended := simulateAccel(accelCfg, []accelUser{
		{offered: 1e6, bytes: 100, queues: 1},
		{offered: 4e6, bytes: 500, matches: 1, queues: 1},
	}, sim.NewRNG(7), 40000)
	if contended[0].meanSojourn <= solo[0].meanSojourn {
		t.Fatalf("sojourn did not grow: solo %v contended %v",
			solo[0].meanSojourn, contended[0].meanSojourn)
	}
}

func TestAccelServiceTimeComposition(t *testing.T) {
	// Mean service time should reflect base + bytes + matches.
	users := []accelUser{{offered: 1e6, bytes: 1000, matches: 3, queues: 1}}
	res := simulateAccel(accelCfg, users, sim.NewRNG(8), 40000)
	want := 200e-9 + 1000*0.1e-9 + 3*300e-9
	if rel := math.Abs(res[0].meanService-want) / want; rel > 0.05 {
		t.Fatalf("mean service %v, want ~%v", res[0].meanService, want)
	}
}

func TestAccelNoUsers(t *testing.T) {
	res := simulateAccel(accelCfg, []accelUser{{offered: 0}}, sim.NewRNG(9), 1000)
	if res[0].completionRate != 0 {
		t.Fatal("expected zero completions for zero offered")
	}
}
