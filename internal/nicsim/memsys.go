package nicsim

// memState is the converged memory-subsystem view for one workload at one
// solver iterate.
type memState struct {
	accessRate float64 // cache references/s (the paper's CAR)
	occupancy  float64 // LLC bytes held
	missRatio  float64
	memSec     float64 // memory time per packet, including stalls
}

// memSolve evaluates the memory subsystem for co-located workloads given
// their current throughputs. It returns per-workload state plus the DRAM
// bandwidth utilization.
//
// Model, in three steps:
//
//  1. LLC occupancy: demand-proportional water-filling weighted by
//     working-set size. A workload touching a larger set holds more of
//     the cache, capped at its WSS, with spare capacity redistributed.
//     This reproduces the "hash table fills the LLC" saturation behaviour
//     behind Fig. 6 of the paper. Occupancy is rate-independent: even a
//     slowed workload keeps cycling through its working set, so steady-
//     state residency tracks footprints, not speeds.
//
//  2. Miss ratio: compulsory base plus a term linear in the fraction of
//     the working set not resident.
//
//  3. DRAM bandwidth: *competing* miss traffic inflates a workload's
//     per-miss penalty by an M/M/1-style queueing factor. A workload's
//     own stream does not self-inflate — its requests are pipelined
//     behind one another by design (MLP) — so the coupling is strictly
//     cross-workload, which is what the paper's contention models assume.
func memSolve(cfg *Config, ws []*Workload, tput []float64) ([]memState, float64) {
	n := len(ws)
	states := make([]memState, n)
	for i, w := range ws {
		states[i].accessRate = tput[i] * w.MemRefsPerPkt
	}

	occupancySolve(cfg.LLCBytes, ws, states)

	// Miss ratios and per-workload DRAM demand.
	missBytes := make([]float64, n)
	var totalMiss float64
	for i, w := range ws {
		states[i].missRatio = missRatio(cfg.BaseMissRatio, w.WSSBytes, states[i].occupancy)
		missBytes[i] = states[i].accessRate * states[i].missRatio * cfg.LineBytes
		totalMiss += missBytes[i]
	}
	totalUtil := totalMiss / cfg.DRAMBandwidth
	if totalUtil > 0.95 {
		totalUtil = 0.95
	}

	for i, w := range ws {
		util := (totalMiss - missBytes[i]) / cfg.DRAMBandwidth
		if util > 0.95 {
			util = 0.95
		}
		penalty := cfg.MissPenaltySec * (1 + util/(1-util))
		perRef := cfg.CacheHitSec + states[i].missRatio*penalty
		mlp := w.MemMLP
		if mlp < 1 {
			mlp = 1
		}
		states[i].memSec = w.MemRefsPerPkt * perRef / mlp
	}
	return states, totalUtil
}

// occupancySolve distributes LLC capacity in proportion to working-set
// sizes among workloads with active demand, capping each at its WSS and
// redistributing the remainder (water-filling).
func occupancySolve(llc float64, ws []*Workload, states []memState) {
	n := len(ws)
	capped := make([]bool, n)
	active := func(i int) bool {
		return !capped[i] && states[i].accessRate > 0 && ws[i].WSSBytes > 0
	}
	remaining := llc
	for iter := 0; iter < n+1; iter++ {
		var totalW float64
		for i := range ws {
			if active(i) {
				totalW += ws[i].WSSBytes
			}
		}
		if totalW <= 0 {
			// No active demand left: idle workloads keep whatever fits.
			for i, w := range ws {
				if !capped[i] {
					occ := w.WSSBytes
					if occ > remaining {
						occ = remaining
					}
					states[i].occupancy = occ
				}
			}
			return
		}
		progress := false
		for i, w := range ws {
			if !active(i) {
				continue
			}
			share := remaining * w.WSSBytes / totalW
			if w.WSSBytes <= share {
				states[i].occupancy = w.WSSBytes
				capped[i] = true
				remaining -= w.WSSBytes
				progress = true
			} else {
				states[i].occupancy = share
			}
		}
		if !progress {
			return
		}
	}
}

// missRatio is the fraction of references missing the LLC given a working
// set of wss bytes with occ bytes resident.
func missRatio(base, wss, occ float64) float64 {
	if wss <= 0 {
		return 0
	}
	if occ >= wss {
		return base
	}
	return base + (1-base)*(1-occ/wss)
}
