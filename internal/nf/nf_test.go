package nf

import (
	"strings"
	"testing"

	"repro/internal/nicsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func processBatch(t *testing.T, n NF, prof traffic.Profile, npkts int) OpStats {
	t.Helper()
	gen := traffic.NewGenerator(prof, sim.NewRNG(7))
	var st OpStats
	for _, p := range gen.Batch(npkts) {
		if err := n.Process(p, &st); err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
	}
	return st
}

func TestCatalogConstructsAll(t *testing.T) {
	for _, name := range Names() {
		n, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if n.Name() != name {
			t.Fatalf("Name() = %q, want %q", n.Name(), name)
		}
		st := processBatch(t, n, traffic.Profile{Flows: 100, PktSize: 512, MTBR: 600}, 50)
		if st.Packets != 50 {
			t.Fatalf("%s processed %v packets", name, st.Packets)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("NoSuchNF"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("NoSuchNF")
}

func TestFlowStatsCountsFlows(t *testing.T) {
	f := NewFlowStats()
	prof := traffic.Profile{Flows: 200, PktSize: 256, MTBR: 0}
	processBatch(t, f, prof, 3000)
	if f.Flows() < 180 || f.Flows() > 200 {
		t.Fatalf("Flows = %d, want ~200", f.Flows())
	}
}

func TestFlowStatsStateGrowsWithFlows(t *testing.T) {
	small := NewFlowStats()
	processBatch(t, small, traffic.Profile{Flows: 500, PktSize: 128}, 2000)
	big := NewFlowStats()
	processBatch(t, big, traffic.Profile{Flows: 50000, PktSize: 128}, 120000)
	if big.StateBytes() <= small.StateBytes() {
		t.Fatalf("state did not grow: %v vs %v", small.StateBytes(), big.StateBytes())
	}
}

func TestIPRouterStateIndependentOfFlows(t *testing.T) {
	r := NewIPRouter()
	before := r.StateBytes()
	processBatch(t, r, traffic.Profile{Flows: 10000, PktSize: 128}, 5000)
	if r.StateBytes() != before {
		t.Fatal("router FIB size changed with traffic")
	}
}

func TestIPRouterDecsTTLAndDrops(t *testing.T) {
	r := NewIPRouter()
	st := processBatch(t, r, traffic.Profile{Flows: 50, PktSize: 128}, 500)
	if st.TrieSteps < 500 {
		t.Fatalf("TrieSteps = %v, want >= packets", st.TrieSteps)
	}
}

func TestNATRewritesSource(t *testing.T) {
	n := NewNAT()
	tp := packet.FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1000, DstPort: 80, Proto: packet.ProtoTCP}
	p := packet.Build(tp, 128, nil)
	var st OpStats
	if err := n.Process(p, &st); err != nil {
		t.Fatal(err)
	}
	if p.Tuple.SrcIP == 0x0a000001 {
		t.Fatal("source IP not rewritten")
	}
	if !p.VerifyIPChecksum() {
		t.Fatal("checksum broken by NAT")
	}
	if n.Translations() != 1 {
		t.Fatalf("Translations = %d", n.Translations())
	}
}

func TestIPTunnelEncapsulates(t *testing.T) {
	tun := NewIPTunnel()
	tp := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoTCP}
	p := packet.Build(tp, 256, nil)
	var st OpStats
	if err := tun.Process(p, &st); err != nil {
		t.Fatal(err)
	}
	if p.Tuple.DstIP>>16 != 0xac10 {
		t.Fatalf("dst not rewritten to endpoint block: %08x", p.Tuple.DstIP)
	}
	if st.BytesTouched < 256 {
		t.Fatalf("encap should touch whole frame, got %v", st.BytesTouched)
	}
}

func TestNIDSAlertsOnMatches(t *testing.T) {
	n := NewNIDS()
	tp := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoTCP}
	evil := packet.Build(tp, 256, []byte("GET /etc/passwd HTTP/1.1"))
	var st OpStats
	if err := n.Process(evil, &st); err != nil {
		t.Fatal(err)
	}
	if n.AlertedFlows() != 1 {
		t.Fatalf("AlertedFlows = %d", n.AlertedFlows())
	}
	if st.RegexMatches == 0 || st.RegexBytes == 0 {
		t.Fatalf("regex stats empty: %+v", st)
	}
}

func TestPacketFilterDrops(t *testing.T) {
	f := NewPacketFilter()
	tp := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: packet.ProtoTCP}
	var st OpStats
	if err := f.Process(packet.Build(tp, 256, []byte("cmd.exe launch")), &st); err != nil {
		t.Fatal(err)
	}
	if err := f.Process(packet.Build(tp, 256, []byte("~~~~innocuous~~~~")), &st); err != nil {
		t.Fatal(err)
	}
	if f.Dropped() != 1 || st.Drops != 1 {
		t.Fatalf("Dropped = %d, st.Drops = %v", f.Dropped(), st.Drops)
	}
}

func TestACLDefaultAllows(t *testing.T) {
	a := NewACL()
	st := processBatch(t, a, traffic.Profile{Flows: 100, PktSize: 128}, 1000)
	if st.RuleChecks < 1000 {
		t.Fatalf("RuleChecks = %v", st.RuleChecks)
	}
	if st.Drops > 500 {
		t.Fatalf("synthetic policy too aggressive: %v drops", st.Drops)
	}
}

func TestFirewallWalksTable(t *testing.T) {
	fw := NewFirewall()
	st := processBatch(t, fw, traffic.Profile{Flows: 1000, PktSize: 128}, 2000)
	// Each packet: >=1 probe for the flow plus walk entries.
	if st.HashProbes < 2000*(1+firewallWalkEntries) {
		t.Fatalf("HashProbes = %v, want walk included", st.HashProbes)
	}
}

func TestMeasureFlowSensitivity(t *testing.T) {
	// FlowStats WSS must grow with flow count (the Fig. 6a mechanism).
	small, err := Measure(NewFlowStats(), traffic.Profile{Flows: 2000, PktSize: 1500, MTBR: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measure(NewFlowStats(), traffic.Profile{Flows: 64000, PktSize: 1500, MTBR: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.WSSBytes <= small.WSSBytes {
		t.Fatalf("WSS did not grow with flows: %v vs %v", small.WSSBytes, big.WSSBytes)
	}
}

func TestMeasureRegexShape(t *testing.T) {
	low, err := Measure(NewFlowMonitor(), traffic.Default.With(traffic.AttrMTBR, 100), 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Measure(NewFlowMonitor(), traffic.Default.With(traffic.AttrMTBR, 1000), 1)
	if err != nil {
		t.Fatal(err)
	}
	lu, ok := low.Accel[nicsim.AccelRegex]
	if !ok {
		t.Fatal("FlowMonitor workload has no regex use")
	}
	hu := high.Accel[nicsim.AccelRegex]
	if hu.MatchesPerReq <= lu.MatchesPerReq {
		t.Fatalf("matches/req did not scale with MTBR: %v vs %v",
			lu.MatchesPerReq, hu.MatchesPerReq)
	}
	if lu.BytesPerReq <= 0 {
		t.Fatal("regex request bytes not measured")
	}
}

func TestMeasurePacketSizeSensitivity(t *testing.T) {
	// IPTunnel copies the frame: CPU time should grow with packet size.
	small, err := Measure(NewIPTunnel(), traffic.Default.With(traffic.AttrPktSize, 64), 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measure(NewIPTunnel(), traffic.Default.With(traffic.AttrPktSize, 1500), 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.CPUSecPerPkt <= small.CPUSecPerPkt {
		t.Fatal("IPTunnel CPU cost insensitive to packet size")
	}
	// FlowStats is header-only: CPU time stays flat (Fig. 6b).
	s2, err := Measure(NewFlowStats(), traffic.Default.With(traffic.AttrPktSize, 64), 1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Measure(NewFlowStats(), traffic.Default.With(traffic.AttrPktSize, 1500), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel := (b2.CPUSecPerPkt - s2.CPUSecPerPkt) / s2.CPUSecPerPkt
	if rel > 0.05 {
		t.Fatalf("FlowStats CPU cost moved %.1f%% with packet size", rel*100)
	}
}

func TestMeasureProducesValidWorkloads(t *testing.T) {
	for _, name := range Names() {
		w, err := Measure(MustNew(name), traffic.Default, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.CPUSecPerPkt <= 0 || w.MemRefsPerPkt <= 0 || w.WSSBytes <= 0 {
			t.Fatalf("%s: degenerate workload %+v", name, w)
		}
		for _, kind := range UsesAccelerator(name) {
			if !w.UsesAccel(kind) {
				t.Fatalf("%s: expected %v usage", name, kind)
			}
		}
	}
}

func TestMeasuredSoloThroughputsPlausible(t *testing.T) {
	// Solo throughputs on the BF-2 model should land in the paper's
	// 0.1–5 Mpps ballpark for all catalog NFs.
	nic := nicsim.New(nicsim.BlueField2(), 99)
	for _, name := range Table1Names() {
		w, err := Measure(MustNew(name), traffic.Default, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := nic.RunSolo(w)
		if err != nil {
			t.Fatal(err)
		}
		if m.Throughput < 0.05e6 || m.Throughput > 10e6 {
			t.Errorf("%s solo throughput %.2f Mpps implausible", name, m.Throughput/1e6)
		}
	}
}
