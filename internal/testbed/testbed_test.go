package testbed

import (
	"testing"

	"repro/internal/nfbench"
	"repro/internal/nicsim"
	"repro/internal/traffic"
)

func TestWorkloadCaching(t *testing.T) {
	tb := New(nicsim.BlueField2(), 1)
	w1, err := tb.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := tb.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("workload not cached")
	}
	w3, err := tb.Workload("FlowStats", traffic.Default.With(traffic.AttrFlows, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if w3 == w1 {
		t.Fatal("distinct profiles shared a workload")
	}
}

func TestWorkloadUnknownNF(t *testing.T) {
	tb := New(nicsim.BlueField2(), 1)
	if _, err := tb.Workload("Nope", traffic.Default); err == nil {
		t.Fatal("expected error")
	}
}

func TestWorkloadDeterministicAcrossOrder(t *testing.T) {
	a := New(nicsim.BlueField2(), 7)
	b := New(nicsim.BlueField2(), 7)
	// Different measurement order, same footprints.
	if _, err := a.Workload("NAT", traffic.Default); err != nil {
		t.Fatal(err)
	}
	wa, err := a.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	if wa.CPUSecPerPkt != wb.CPUSecPerPkt || wa.WSSBytes != wb.WSSBytes {
		t.Fatalf("order-dependent footprints: %+v vs %+v", wa, wb)
	}
}

func TestWithMemBenchReducesThroughput(t *testing.T) {
	tb := New(nicsim.BlueField2(), 2)
	w, err := tb.Workload("FlowStats", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := tb.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tb.WithMemBench(w, 200e6, 12<<20)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput >= solo.Throughput {
		t.Fatal("mem-bench did not reduce throughput")
	}
}

func TestWithRegexBenchReturnsBoth(t *testing.T) {
	tb := New(nicsim.BlueField2(), 3)
	w, err := tb.Workload("NIDS", traffic.Default)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := tb.WithRegexBench(w, 1e6, 1000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[1].Name != "regex-bench" {
		t.Fatalf("unexpected measurements: %d", len(ms))
	}
}

func TestRunDistinctSeedsVary(t *testing.T) {
	tb := New(nicsim.BlueField2(), 4)
	w := nfbench.MemBench(100e6, 4<<20)
	a, err := tb.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.RunSolo(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput == b.Throughput {
		t.Fatal("repeated measurements identical — no run-to-run noise")
	}
}

func TestMemContentionString(t *testing.T) {
	s := MemContention{CAR: 100e6, WSS: 8 << 20}.String()
	if s != "car=100Mref/s wss=8.0MB" {
		t.Fatalf("String() = %q", s)
	}
}
