package cluster

import (
	"encoding/json"
	"os"
	"testing"
)

// benchBaselinePath is the committed scheduler-benchmark baseline,
// relative to this package.
const benchBaselinePath = "../../BENCH_cluster.json"

// benchBaseline is the committed benchmark record CI gates against.
type benchBaseline struct {
	Kind           string  `json:"kind"`
	Scenario       string  `json:"scenario"`
	BatchedNsPerOp int64   `json:"batched_ns_per_op"`
	PerSlotNsPerOp int64   `json:"per_slot_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

// TestSchedulerBenchGate is the CI bench-smoke gate. It is opt-in (wall
// clock assertions do not belong in the default test run):
//
//	YALA_BENCH_SMOKE=1      go test ./internal/cluster -run TestSchedulerBenchGate   # gate
//	YALA_BENCH_SMOKE=update go test ./internal/cluster -run TestSchedulerBenchGate   # re-baseline
//
// The gate measures the reference 16-NIC/120-arrival run on both
// scheduler paths and fails when the batched path loses its ≥1.5×
// speedup over the per-slot loop, or regresses by more than 2× against
// the committed BENCH_cluster.json baseline.
func TestSchedulerBenchGate(t *testing.T) {
	mode := os.Getenv("YALA_BENCH_SMOKE")
	if mode == "" {
		t.Skip("set YALA_BENCH_SMOKE=1 to run the scheduler bench gate (update to re-baseline)")
	}
	batched := testing.Benchmark(BenchmarkScheduleReferenceBatched)
	perSlot := testing.Benchmark(BenchmarkScheduleReferencePerSlot)
	cur := benchBaseline{
		Kind:           "cluster-scheduler-bench",
		Scenario:       "16 NICs / 120 arrivals / yala policy (referenceScenario)",
		BatchedNsPerOp: batched.NsPerOp(),
		PerSlotNsPerOp: perSlot.NsPerOp(),
		Speedup:        float64(perSlot.NsPerOp()) / float64(batched.NsPerOp()),
	}
	t.Logf("batched %v/op, per-slot %v/op, speedup %.2fx", batched.NsPerOp(), perSlot.NsPerOp(), cur.Speedup)

	if mode == "update" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", benchBaselinePath)
		return
	}

	if cur.Speedup < 1.5 {
		t.Errorf("batched scheduler speedup %.2fx below the 1.5x floor (batched %dns, per-slot %dns)",
			cur.Speedup, cur.BatchedNsPerOp, cur.PerSlotNsPerOp)
	}
	raw, err := os.ReadFile(benchBaselinePath)
	if err != nil {
		t.Fatalf("reading committed baseline (regenerate with YALA_BENCH_SMOKE=update): %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.BatchedNsPerOp > 0 && cur.BatchedNsPerOp > 2*base.BatchedNsPerOp {
		t.Errorf("batched path regressed >2x vs committed baseline: %dns/op vs %dns/op",
			cur.BatchedNsPerOp, base.BatchedNsPerOp)
	}
}
