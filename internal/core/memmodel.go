package core

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// MemModel is the black-box memory-subsystem contention model (§4.1.2):
// a gradient-boosting regressor over the competitors' seven performance
// counters (Table 11). The traffic-aware variant (§5.1.2) appends the
// target's traffic-attribute vector (flows, packet size, MTBR) to the
// feature vector.
//
// The regression target is the *sensitivity ratio* — contended throughput
// over solo throughput at the same profile — so the model learns the
// contention response separately from the profile-dependent baseline the
// solo model provides. This is the sensitivity-curve view SLOMO
// introduced, extended with traffic features.
type MemModel struct {
	gbr          *ml.GBR
	trafficAware bool
}

// memFeatures builds the model input from the competitors' aggregate
// counters and, for traffic-aware models, the target's traffic profile.
func memFeatures(comp nicsim.Counters, prof traffic.Profile, trafficAware bool) []float64 {
	f := comp.Vector()
	if trafficAware {
		f = append(f, prof.Vector()...)
	}
	return f
}

// MemSample is one training observation: the target's throughput under a
// given competitor contention level and traffic profile, with the solo
// throughput at the same profile as the normalization baseline.
type MemSample struct {
	Competitors    nicsim.Counters
	Profile        traffic.Profile
	Throughput     float64
	SoloThroughput float64
}

// FitMemModel trains the GBR on the samples. trafficAware selects the
// augmented feature vector.
func FitMemModel(samples []MemSample, trafficAware bool, cfg ml.GBRConfig) (*MemModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: memory model fit with no samples")
	}
	var d ml.Dataset
	for _, s := range samples {
		if s.SoloThroughput <= 0 {
			return nil, fmt.Errorf("core: memory sample without solo baseline")
		}
		d.Add(memFeatures(s.Competitors, s.Profile, trafficAware), s.Throughput/s.SoloThroughput)
	}
	g, err := ml.FitGBR(d.X, d.Y, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: memory model: %w", err)
	}
	return &MemModel{gbr: g, trafficAware: trafficAware}, nil
}

// PredictRatio returns the modeled sensitivity ratio (contended over solo
// throughput) under the given competitor counters and traffic profile,
// clamped to [0, 1].
func (m *MemModel) PredictRatio(comp nicsim.Counters, prof traffic.Profile) float64 {
	y := m.gbr.Predict(memFeatures(comp, prof, m.trafficAware))
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}

// Predict returns the target's throughput under memory contention alone,
// given the solo throughput at the profile.
func (m *MemModel) Predict(comp nicsim.Counters, prof traffic.Profile, solo float64) float64 {
	return solo * m.PredictRatio(comp, prof)
}

// TrafficAware reports whether the model uses the augmented features.
func (m *MemModel) TrafficAware() bool { return m.trafficAware }

// SoloModel predicts an NF's uncontended throughput as a function of its
// traffic profile — the T_solo term of the composition equations. It is a
// GBR over the traffic-attribute vector.
type SoloModel struct {
	gbr *ml.GBR
}

// SoloSample is one (profile, solo throughput) observation.
type SoloSample struct {
	Profile    traffic.Profile
	Throughput float64
}

// FitSoloModel trains the solo-throughput model.
func FitSoloModel(samples []SoloSample, cfg ml.GBRConfig) (*SoloModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: solo model fit with no samples")
	}
	var d ml.Dataset
	for _, s := range samples {
		d.Add(s.Profile.Vector(), s.Throughput)
	}
	g, err := ml.FitGBR(d.X, d.Y, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: solo model: %w", err)
	}
	return &SoloModel{gbr: g}, nil
}

// Predict returns the modeled solo throughput at the profile.
func (m *SoloModel) Predict(prof traffic.Profile) float64 {
	y := m.gbr.Predict(prof.Vector())
	if y < 0 {
		return 0
	}
	return y
}
