package analysis

import (
	"go/ast"
	"go/constant"
)

// DefaultEnvelopePackages are the HTTP front ends whose error responses
// must carry the structured /v2 envelope (code/message/details/
// request_id) rather than a bare status line.
var DefaultEnvelopePackages = []string{
	"internal/serve",
	"internal/gateway",
}

// Envelope flags http.Error calls and WriteHeader with a constant
// 4xx/5xx status in the serving packages: every client-visible error
// must flow through the structured envelope writer so callers always
// get code/message/request_id JSON. WriteHeader with a computed status
// (the envelope writer itself, proxied upstream statuses) is exempt —
// the analyzer targets the hand-rolled shortcut, not the plumbing.
func Envelope(pkgs ...string) *Analyzer {
	if pkgs == nil {
		pkgs = DefaultEnvelopePackages
	}
	return &Analyzer{
		Name: "envelope",
		Doc:  "forbids http.Error and constant 4xx/5xx WriteHeader in serving packages; use the /v2 envelope writer",
		Run: func(pass *Pass) {
			if !inPackages(pass, pkgs) {
				return
			}
			for _, f := range pass.Pkg.Files {
				file := f
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if pass.usesPkgFunc(file, sel, "net/http", "Error") {
						pass.Reportf(call.Pos(), "http.Error writes a plain-text error; respond through the structured /v2 envelope writer")
						return true
					}
					if sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
						if code, ok := pass.constInt(call.Args[0]); ok && code >= 400 && code <= 599 {
							pass.Reportf(call.Pos(), "raw WriteHeader(%d) bypasses the /v2 error envelope; use the structured envelope writer", code)
						}
					}
					return true
				})
			}
		},
	}
}

// constInt evaluates e as a compile-time integer constant.
func (p *Pass) constInt(e ast.Expr) (int64, bool) {
	if p.Pkg.Info == nil {
		return 0, false
	}
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
