package serve

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// Serving-hot-path benchmarks: the perf baseline future scaling PRs
// (batching, sharding, multi-backend) measure against. Run with:
//
//	go test -bench=. -benchmem ./internal/serve
//
// The registry trains once per benchmark process (tiny test config); the
// measured loop is pure serving.

func benchService(b *testing.B) *Service {
	b.Helper()
	s := NewService(ServiceConfig{
		Registry: RegistryConfig{
			Dir:   b.TempDir(),
			Seed:  1,
			Train: testTrainConfig(1),
			SLOMO: testSLOMOConfig(1),
		},
		Workers: 4,
	})
	b.Cleanup(s.Close)
	return s
}

// BenchmarkPredictCacheHit measures the warm path: one scenario answered
// repeatedly.
func BenchmarkPredictCacheHit(b *testing.B) {
	s := benchService(b)
	req := PredictRequest{NF: "FlowStats", Competitors: []CompetitorSpec{{Name: "ACL"}}}
	if _, err := s.Predict(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Predict(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictCacheMiss measures the cold path: every iteration is a
// fresh traffic profile, so each request runs the full predictor stack
// (solo measurement + model evaluation).
func BenchmarkPredictCacheMiss(b *testing.B) {
	s := benchService(b)
	// Pre-train and warm the competitor solo measurement so iterations
	// measure the per-scenario cost, not one-time setup.
	if _, err := s.Predict(context.Background(), PredictRequest{NF: "FlowStats", Competitors: []CompetitorSpec{{Name: "ACL"}}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := PredictRequest{
			NF:          "FlowStats",
			Profile:     ProfileSpec{MTBR: F64(100 + float64(i%100000)*0.001)},
			Competitors: []CompetitorSpec{{Name: "ACL"}},
		}
		if _, err := s.Predict(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedArrivalWorkload replays a loadgen-like scenario mix
// in-process from parallel goroutines: mostly warm hits with a tail of
// misses, the serving steady state.
func BenchmarkMixedArrivalWorkload(b *testing.B) {
	s := benchService(b)
	nfs := []string{"FlowStats", "ACL"}
	profiles := []ProfileSpec{{}, {Flows: 64000}, {PktSize: 256}, {Flows: 4000, PktSize: 512}}
	// Warm every (nf, competitor, profile) combination the mix draws from.
	for _, nf := range nfs {
		for _, p := range profiles {
			for _, comp := range nfs {
				req := PredictRequest{NF: nf, Profile: p, Competitors: []CompetitorSpec{{Name: comp}}}
				if _, err := s.Predict(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := sim.NewRNG(uint64(b.N) + 0x5eed)
		for pb.Next() {
			req := PredictRequest{
				NF:          nfs[rng.Intn(len(nfs))],
				Profile:     profiles[rng.Intn(len(profiles))],
				Competitors: []CompetitorSpec{{Name: nfs[rng.Intn(len(nfs))]}},
			}
			if rng.Float64() < 0.02 { // 2% cold tail
				req.Profile = ProfileSpec{MTBR: F64(rng.Range(100, 1000))}
			}
			if _, err := s.Predict(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheOnly isolates the sharded LRU itself.
func BenchmarkCacheOnly(b *testing.B) {
	c := NewCache(8192)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("predict|yala|NF%d@(16000, 1500, 600)|", i)
		c.Put(keys[i], PredictResponse{NF: keys[i]})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := c.Get(keys[i%len(keys)]); !ok {
				b.Fatal("unexpected miss")
			}
			i++
		}
	})
}
