package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cluster"
)

// Handler exposes the service over HTTP/JSON:
//
//	POST /v1/predict        PredictRequest  → PredictResponse
//	POST /v1/predict/batch  BatchRequest    → BatchResponse
//	POST /v1/compare   CompareRequest  → CompareResponse
//	POST /v1/admit     AdmitRequest    → AdmitResponse
//	POST /v1/diagnose  DiagnoseRequest → DiagnoseResponse
//	POST /v1/cluster/run    ClusterRunRequest → cluster.Comparison
//	GET  /v1/cluster/policies          → ClusterPoliciesResponse
//	GET  /v1/models                    → []ModelInfo
//	GET  /v1/stats                     → ServiceStats
//	POST /v1/reload    reloadRequest   → {"ok": true}
//	GET  /healthz                      → ok
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/run", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req ClusterRunRequest) (cluster.Comparison, error) {
			return s.ClusterRun(r.Context(), req)
		})
	})
	mux.HandleFunc("GET /v1/cluster/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ClusterPoliciesResponse{Policies: cluster.Policies()})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req PredictRequest) (PredictResponse, error) {
			return s.Predict(r.Context(), req)
		})
	})
	mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req BatchRequest) (BatchResponse, error) {
			return s.PredictBatch(r.Context(), req)
		})
	})
	mux.HandleFunc("POST /v1/compare", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req CompareRequest) (CompareResponse, error) {
			return s.Compare(r.Context(), req)
		})
	})
	mux.HandleFunc("POST /v1/admit", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req AdmitRequest) (AdmitResponse, error) {
			return s.Admit(r.Context(), req)
		})
	})
	mux.HandleFunc("POST /v1/diagnose", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req DiagnoseRequest) (DiagnoseResponse, error) {
			return s.Diagnose(r.Context(), req)
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Models())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req reloadRequest) (map[string]bool, error) {
			backend, err := ParseBackend(req.Backend)
			if err != nil {
				return nil, err
			}
			s.Reload(backend, req.NF)
			return map[string]bool{"ok": true}, nil
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// reloadRequest names the model to evict from the registry.
type reloadRequest struct {
	NF      string `json:"nf"`
	Backend string `json:"backend,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// handleJSON decodes one request type, runs the service call and encodes
// the response.
func handleJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	var req Req
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	resp, err := fn(req)
	if err != nil {
		// Client-caused errors (unknown NF, malformed profile, unknown
		// backend/policy) are 400; transient server conditions are 503 so
		// retry policies keyed on 4xx-vs-5xx retry them; everything else
		// is a scenario the client asked for that the service cannot
		// answer.
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, ErrBadRequest):
			status = http.StatusBadRequest
		case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Client is a typed client for the HTTP API; the load generator and the
// CLI use it.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for a server base URL (e.g.
// "http://localhost:8844"). The transport keeps enough idle connections
// per host for load-generation fan-out — net/http's default of 2 makes
// every worker beyond the second re-handshake on each request.
func NewClient(base string) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &Client{Base: base, HTTP: &http.Client{Transport: tr}}
}

// post round-trips one JSON call.
func post[Req, Resp any](c *Client, path string, req Req) (Resp, error) {
	var resp Resp
	body, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	hr, err := c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return resp, err
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(hr.Body)
	if err != nil {
		return resp, err
	}
	if hr.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return resp, fmt.Errorf("serve: %s: %s", path, eb.Error)
		}
		return resp, fmt.Errorf("serve: %s: HTTP %d", path, hr.StatusCode)
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return resp, fmt.Errorf("serve: %s: decoding response: %w", path, err)
	}
	return resp, nil
}

// Predict calls POST /v1/predict.
func (c *Client) Predict(req PredictRequest) (PredictResponse, error) {
	return post[PredictRequest, PredictResponse](c, "/v1/predict", req)
}

// PredictBatch calls POST /v1/predict/batch.
func (c *Client) PredictBatch(req BatchRequest) (BatchResponse, error) {
	return post[BatchRequest, BatchResponse](c, "/v1/predict/batch", req)
}

// Compare calls POST /v1/compare.
func (c *Client) Compare(req CompareRequest) (CompareResponse, error) {
	return post[CompareRequest, CompareResponse](c, "/v1/compare", req)
}

// Admit calls POST /v1/admit.
func (c *Client) Admit(req AdmitRequest) (AdmitResponse, error) {
	return post[AdmitRequest, AdmitResponse](c, "/v1/admit", req)
}

// Diagnose calls POST /v1/diagnose.
func (c *Client) Diagnose(req DiagnoseRequest) (DiagnoseResponse, error) {
	return post[DiagnoseRequest, DiagnoseResponse](c, "/v1/diagnose", req)
}

// ClusterRun calls POST /v1/cluster/run.
func (c *Client) ClusterRun(req ClusterRunRequest) (cluster.Comparison, error) {
	return post[ClusterRunRequest, cluster.Comparison](c, "/v1/cluster/run", req)
}

// Stats calls GET /v1/stats.
func (c *Client) Stats() (ServiceStats, error) {
	var stats ServiceStats
	hr, err := c.HTTP.Get(c.Base + "/v1/stats")
	if err != nil {
		return stats, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return stats, fmt.Errorf("serve: /v1/stats: HTTP %d", hr.StatusCode)
	}
	err = json.NewDecoder(hr.Body).Decode(&stats)
	return stats, err
}
