package serve

// Serve-layer tests for the online-feedback loop: the /v2/ingest
// endpoint, the shadow-serving isolation guarantee (candidate outputs
// are never returned to clients), and zero-downtime promotion under
// concurrent live load.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/feedback"
	"repro/internal/nf"
)

// driftyBackend is a stub whose trained throughput tracks the training
// NIC's frequency scale — so a feedback-calibrated retrain produces a
// measurably different model, which is exactly what the shadow
// isolation and promotion tests need to tell live from candidate.
type driftyBackend struct{}

type driftyModel struct {
	Name string  `json:"name"`
	PPS  float64 `json:"pps"`
}

func (m driftyModel) NF() string { return m.Name }

func (driftyBackend) Name() string { return "drifty" }

func (driftyBackend) Train(env backend.TrainEnv, name string) (backend.Model, error) {
	if !nf.Known(name) {
		return nil, fmt.Errorf("drifty: unknown NF %q", name)
	}
	scale := env.NIC.FreqScale
	if scale <= 0 {
		scale = 1
	}
	return driftyModel{Name: name, PPS: 1e6 * scale}, nil
}

func (driftyBackend) Predict(m backend.Model, sc backend.Scenario) (backend.Prediction, error) {
	dm, ok := m.(driftyModel)
	if !ok {
		return backend.Prediction{}, fmt.Errorf("drifty: foreign model %T", m)
	}
	return backend.Prediction{
		SoloPPS:      dm.PPS,
		PredictedPPS: dm.PPS / float64(1+len(sc.Competitors)),
	}, nil
}

func (driftyBackend) Save(m backend.Model, path string) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func (driftyBackend) Load(path string) (backend.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m driftyModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if m.Name == "" || m.PPS <= 0 {
		return nil, fmt.Errorf("drifty: %s is not a drifty model", path)
	}
	return m, nil
}

func init() { backend.Register(driftyBackend{}) }

// driftService builds a service with its own model dir and a feedback
// controller tuned to trip and promote quickly.
func driftService(t *testing.T, synchronous bool) *Service {
	t.Helper()
	cfg := RegistryConfig{
		Dir:   t.TempDir(),
		Seed:  1,
		Train: testTrainConfig(1),
		SLOMO: testSLOMOConfig(1),
	}
	s := NewService(ServiceConfig{
		Registry: cfg,
		Workers:  2,
		Feedback: &feedback.Config{
			WindowSize:        64,
			MinSamples:        8,
			MinPromoteSamples: 3,
			Synchronous:       synchronous,
		},
	})
	t.Cleanup(s.Close)
	return s
}

// driftMeasurements builds n identical measurements for FlowStats/drifty.
func driftMeasurements(pps float64, n int) []IngestMeasurement {
	items := make([]IngestMeasurement, n)
	for i := range items {
		items[i] = IngestMeasurement{
			NF: "FlowStats", Backend: "drifty",
			MeasuredPPS: pps, Source: "rig-0",
		}
	}
	return items
}

// TestIngestEndpoint drives POST /v2/ingest over HTTP: a clean batch
// is fully accepted with nothing quarantined, the counters surface in
// /v2/stats and /metrics, and malformed measurements 400 with a
// per-element error.
func TestIngestEndpoint(t *testing.T) {
	ts := testServer(t)

	res := postAs[IngestResult](t, ts, "/v2/ingest",
		map[string]any{"measurements": []map[string]any{
			{"model": "FlowStats", "backend": "drifty", "measured_pps": 1e6, "source": "rig-1"},
			{"model": "FlowStats", "backend": "drifty", "measured_pps": 9.9e5, "source": "rig-1"},
		}})
	if res.Accepted != 2 || res.Quarantined != 0 {
		t.Fatalf("clean ingest: %+v", res)
	}

	st := getAs[statsV2](t, ts, "/v2/stats")
	if st.Drift.Observations != 2 || st.Drift.Quarantined != 0 {
		t.Fatalf("drift stats after clean ingest: %+v", st.Drift)
	}
	if st.Requests["ingest"] != 1 {
		t.Fatalf("ingest request counter: %v", st.Requests)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "yala_drift_observations_total 2") {
		t.Fatalf("/metrics missing drift observations:\n%s", prom)
	}

	status, body := postRaw(t, ts, "/v2/ingest",
		`{"measurements":[{"model":"FlowStats","backend":"drifty","measured_pps":-1}]}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "measurements[0]") {
		t.Fatalf("negative measured_pps: status %d body %s", status, body)
	}
	status, body = postRaw(t, ts, "/v2/ingest",
		`{"measurements":[{"model":"","measured_pps":100}]}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "measurements[0]") {
		t.Fatalf("empty model id: status %d body %s", status, body)
	}
}

// TestShadowIsolationAndPromotion is the core lifecycle contract:
// drifted measurements trip a retrain, the candidate shadow-serves
// without its predictions ever reaching a client response, and once
// the candidate beats the live model on ground truth it is promoted
// atomically — generation bump, cache eviction, new predictions.
func TestShadowIsolationAndPromotion(t *testing.T) {
	s := driftService(t, true)
	ctx := context.Background()
	key := feedback.Key{NF: "FlowStats", Backend: "drifty"}
	prof := ProfileSpec{}.Profile()

	// Baseline: the live model predicts 1e6 solo.
	base, err := s.predictCached("drifty", "", "FlowStats", prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.PredictedPPS != 1e6 {
		t.Fatalf("baseline live prediction: %+v", base)
	}

	// Ground truth says the hardware runs at half the modeled rate:
	// ratio 0.5 is far past the drift threshold, so the gate trips as
	// soon as the window fills and the synchronous controller trains a
	// candidate calibrated to the measured scale.
	if _, err := s.Ingest(ctx, driftMeasurements(5e5, 8)); err != nil {
		t.Fatal(err)
	}
	fst := s.fb.Stats()
	if fst.Trips == 0 || fst.Retrains != 1 {
		t.Fatalf("drift should have tripped one retrain: %+v", fst)
	}
	sm, ok := s.fb.ShadowModel(key)
	if !ok || sm.NF() != "FlowStats" {
		t.Fatalf("no shadow candidate after retrain (ok=%v)", ok)
	}
	if pps := sm.(driftyModel).PPS; pps < 4e5 || pps > 6e5 {
		t.Fatalf("candidate not calibrated to measurements: PPS %v", pps)
	}

	// Shadow isolation: a fresh (uncached) scenario runs BOTH models,
	// records the comparison, and returns only the live prediction.
	prof2 := ProfileSpec{Flows: 4096}.Profile()
	live, err := s.predictCached("drifty", "", "FlowStats", prof2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if live.PredictedPPS != 1e6 {
		t.Fatalf("shadow prediction leaked to client: %+v", live)
	}
	if got := s.fb.Stats().ShadowCompares; got == 0 {
		t.Fatal("shadow candidate was not exercised on live traffic")
	}

	// Three more ground-truth reports: the candidate's error is ~0, the
	// live model's is ~100%, so the controller promotes.
	if _, err := s.Ingest(ctx, driftMeasurements(5e5, 3)); err != nil {
		t.Fatal(err)
	}
	fst = s.fb.Stats()
	if fst.Promotions != 1 {
		t.Fatalf("candidate should have been promoted: %+v", fst)
	}
	if fst.Quarantined != 0 {
		t.Fatalf("clean input must not quarantine: %+v", fst)
	}
	if _, ok := s.fb.ShadowModel(key); ok {
		t.Fatal("shadow still active after promotion")
	}

	// The promoted model serves immediately: the old cached entry was
	// evicted, and the same request now answers with the candidate.
	after, err := s.predictCached("drifty", "", "FlowStats", prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.PredictedPPS != 5e5 {
		t.Fatalf("promotion did not take effect: %+v", after)
	}

	// Generation accounting: initial on-demand train was generation 1,
	// the promotion bumped it to 2, with a fresh timestamp.
	found := false
	for _, info := range s.reg.Models() {
		if info.NF == "FlowStats" && info.Backend == "drifty" && info.HW == "" {
			found = true
			if info.Generation != 2 || info.TrainedAt <= 0 {
				t.Fatalf("promotion generation: %+v", info)
			}
		}
	}
	if !found {
		t.Fatalf("promoted model missing from listing: %+v", s.reg.Models())
	}
}

// TestPromotionUnderLoadZeroDrops hammers the predict endpoint from
// concurrent clients while an ingest stream forces a drift-driven
// promotion, and asserts no request fails at any point in the swap.
func TestPromotionUnderLoadZeroDrops(t *testing.T) {
	s := driftService(t, true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the live model before the load starts.
	status, body := postRaw(t, ts, "/v2/models/FlowStats/drifty:predict", `{}`)
	if status != http.StatusOK {
		t.Fatalf("warmup predict: status %d body %s", status, body)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Cycle profiles so the load mixes cache hits with
				// uncached predictions (which run the shadow compare).
				body := fmt.Sprintf(`{"profile":{"flows":%d}}`, 1000+(i%8)*500)
				st, resp := postRaw(t, ts, "/v2/models/FlowStats/drifty:predict", body)
				if st != http.StatusOK {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("worker %d: status %d body %s", w, st, resp))
					mu.Unlock()
					return
				}
			}
		}(w)
	}

	deadline := time.Now().Add(30 * time.Second)
	for s.fb.Stats().Promotions == 0 && time.Now().Before(deadline) {
		if _, err := s.Ingest(context.Background(), driftMeasurements(5e5, 4)); err != nil {
			t.Errorf("ingest during load: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("requests dropped during promotion: %v", failures)
	}
	if got := s.fb.Stats().Promotions; got == 0 {
		t.Fatal("no promotion happened under load")
	}
}
