// Package fixture exercises the boundedread analyzer.
package fixture

import (
	"io"
	"net"
	"net/http"
)

// uncapped reads a response body with no limit — flagged.
func uncapped(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body)
}

// uncappedReq reads a request body with no limit — flagged.
func uncappedReq(r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body)
}

// capped wraps the body in a LimitReader — fine.
func capped(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, 10<<20))
}

// cappedMax uses http.MaxBytesReader — fine.
func cappedMax(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, 10<<20))
}

// conn drains a net.Conn — flagged.
func conn(c net.Conn) ([]byte, error) {
	return io.ReadAll(c)
}

// tcp drains a concrete conn type — flagged via the net.Conn method
// set.
func tcp(c *net.TCPConn) ([]byte, error) {
	return io.ReadAll(c)
}

// reader reads a plain io.Reader — not provably network-attached, so
// never flagged.
func reader(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}
