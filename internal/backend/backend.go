// Package backend defines the pluggable prediction-backend interface
// the serving and orchestration layers consume, plus the process-wide
// backend registry.
//
// The paper frames Yala as one of several contention-aware predictors
// (SLOMO being its baseline); this package is the seam that keeps the
// rest of the tree backend-agnostic. A Backend knows how to train a
// per-NF model, persist and reload it, and answer prediction scenarios
// through an opaque Model handle. Implementations self-register
// (Register, usually from an init function), so a new predictor drops
// into the model registry, the HTTP API and the CLI without any edits to
// those layers — serve.ModelRegistry, internal/placement and
// internal/cluster all reach models exclusively through this package.
//
// The built-in backends — "yala" (per-resource white/black-box models
// with RTC/pipeline composition) and "slomo" (counter-extrapolation
// baseline) — live in this package and register themselves on import.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/nicsim"
	"repro/internal/traffic"
)

// DefaultName is the backend requests select when they name none.
const DefaultName = "yala"

// Model is the opaque handle for one trained per-NF model. Concrete
// types belong to the backend that produced the model; every other
// layer stores and passes Models without looking inside.
type Model interface {
	// NF names the network function the model was trained for.
	NF() string
}

// Competitor describes one co-resident NF the way predictors see it:
// its identity, its traffic profile, and its solo measurement at that
// profile (the offline contention description of §3). Solo is a pointer
// because scheduling loops pass the same memoized measurement many
// times per decision.
type Competitor struct {
	NF      string
	Profile traffic.Profile
	Solo    *nicsim.Measurement
}

// Scenario is one prediction question: the target NF's traffic profile
// and the competitors sharing its NIC.
type Scenario struct {
	Profile     traffic.Profile
	Competitors []Competitor
	// Solo lazily supplies the target's *measured* solo throughput at
	// Profile. Backends that extrapolate from a measured baseline
	// (slomo) call it; backends that model solo throughput themselves
	// (yala) never do — so callers on a model-only path pay nothing for
	// leaving the measurement unrun. A nil Solo means the caller cannot
	// measure; backends that need it must fail, not guess.
	Solo func() (float64, error)
}

// Prediction is a backend's answer to one Scenario.
type Prediction struct {
	// SoloPPS is the backend's solo baseline: a model's own solo
	// prediction, or the measured solo an extrapolating backend consumed.
	SoloPPS float64
	// PredictedPPS is the estimated co-located throughput.
	PredictedPPS float64
	// PerResourcePPS and Bottleneck carry a per-resource attribution for
	// backends that produce one (yala); nil/empty otherwise.
	PerResourcePPS map[string]float64
	Bottleneck     string
}

// TrainEnv is everything a backend may use for on-demand training: the
// hardware preset to simulate, the determinism seed, and an optional
// backend-specific configuration (e.g. core.TrainConfig for yala,
// SLOMOOptions for slomo). A nil Options selects the backend's quick
// serving-path default.
type TrainEnv struct {
	NIC     nicsim.Config
	Seed    uint64
	Options any
}

// Backend is one prediction engine: it trains, persists, loads and
// evaluates per-NF models. Implementations must be safe for concurrent
// use (the model registry calls them from many goroutines) and
// deterministic given (TrainEnv, NF) — the serving cache and the
// replayable cluster runs both rest on that.
type Backend interface {
	// Name is the backend's wire identifier: lowercase, stable, unique.
	Name() string
	// Train fits a model for the named NF in the given environment.
	Train(env TrainEnv, nf string) (Model, error)
	// Predict answers one scenario with a model this backend produced.
	Predict(m Model, sc Scenario) (Prediction, error)
	// Save persists a model to path; Load reads one back. Load must
	// reject files it did not write (the registry retrains on load
	// failure, so a corrupt or foreign file must not pass).
	Save(m Model, path string) error
	Load(path string) (Model, error)
}

// Key identifies one (NF, traffic profile) pair — the memo key batched
// evaluation reuses derived features under.
type Key struct {
	NF      string
	Profile traffic.Profile
}

// Batch is the amortized evaluation surface for tight scheduling loops:
// per-decision state whose Predict memoizes per-(NF, profile) derived
// features across many evaluations, so scoring a whole fleet reuses
// conversions instead of redoing them per slot. A Batch is not safe for
// concurrent use; create one per scheduling decision (or longer — the
// memos only cache deterministic derivations). Predict must agree
// exactly with the owning backend's Model-level Predict on throughput.
type Batch interface {
	// Predict estimates the target's co-located throughput. solo is the
	// target's measured solo throughput at target.Profile.
	Predict(m Model, target Key, comps []Competitor, solo float64) (float64, error)
}

// Batcher is the optional fast-path interface a Backend may implement.
// Backends without one are served by the generic fallback in NewBatch.
type Batcher interface {
	NewBatch() Batch
}

// NewBatch returns the backend's batched evaluator, or a generic
// adapter over Backend.Predict when the backend does not provide one.
func NewBatch(b Backend) Batch {
	if br, ok := b.(Batcher); ok {
		return br.NewBatch()
	}
	return genericBatch{b}
}

// genericBatch answers batched queries through the plain Predict path —
// correct for any backend, just without cross-evaluation memoization.
type genericBatch struct {
	b Backend
}

func (g genericBatch) Predict(m Model, target Key, comps []Competitor, solo float64) (float64, error) {
	pred, err := g.b.Predict(m, Scenario{
		Profile:     target.Profile,
		Competitors: comps,
		Solo:        func() (float64, error) { return solo, nil },
	})
	if err != nil {
		return 0, err
	}
	return pred.PredictedPPS, nil
}

// registry is the process-wide backend set. A plain map under an
// RWMutex: registration happens at init time (or in tests), lookups on
// every request.
var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend to the process-wide registry. It panics on an
// empty name or a duplicate registration — both are programmer errors
// that must fail at startup, not surface as puzzling request behavior.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Get returns the named backend.
func Get(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names lists registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
