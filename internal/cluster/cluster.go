// Package cluster is the fleet-scale orchestration layer over the
// prediction stack: it manages tens to hundreds of simulated SmartNICs
// and schedules a continuous, churning stream of NF arrivals, departures
// and traffic-profile drift against them.
//
// The paper's placement use case (§7.5.1) evaluates one NIC-pool and one
// arrival batch at a time; the interesting behavior of a real deployment
// — load skew, churn, rebalancing under drift — only emerges at cluster
// scale. This package supplies that scenario space:
//
//   - Fleet tracks per-NIC resident sets and core budgets.
//   - Scenario generates a deterministic lifecycle event stream (arrivals
//     with exponential inter-arrival times, per-tenant lifetimes and
//     drift) from a seed, replayed identically against every policy.
//   - Scheduler is the pluggable placement policy: random, first-fit,
//     and prediction-guided best-fit driven by Yala or SLOMO models
//     through placement.Feasible, with models supplied once by a
//     ModelSource (serve.ModelRegistry in production).
//   - The orchestrator (Env.Run) replays a scenario on sim.Engine,
//     enforces SLAs against simulator ground truth (a placement that
//     immediately breaches an SLA is rolled back), migrates tenants whose
//     drift pushes a NIC out of feasibility, and accounts violations,
//     utilization and decision latency.
//   - Run compares several policies on one shared environment and
//     renders the comparison table `yala cluster` prints.
package cluster

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/nicsim"
	"repro/internal/placement"
	"repro/internal/slomo"
	"repro/internal/testbed"
)

// ModelSource supplies per-NF prediction models to the schedulers. It is
// the seam between the orchestrator and the serving layer: in production
// serve.ModelRegistry implements it (models load once and are shared by
// every policy in a comparison), tests may supply pre-trained maps.
type ModelSource interface {
	Yala(name string) (*core.Model, error)
	SLOMO(name string) (*slomo.Model, error)
}

// MapModels is a static ModelSource over pre-trained model maps.
type MapModels struct {
	YalaModels  map[string]*core.Model
	SLOMOModels map[string]*slomo.Model
}

// Yala returns the mapped Yala model.
func (m MapModels) Yala(name string) (*core.Model, error) {
	if mm, ok := m.YalaModels[name]; ok {
		return mm, nil
	}
	return nil, fmt.Errorf("cluster: no Yala model for %s", name)
}

// SLOMO returns the mapped SLOMO model.
func (m MapModels) SLOMO(name string) (*slomo.Model, error) {
	if mm, ok := m.SLOMOModels[name]; ok {
		return mm, nil
	}
	return nil, fmt.Errorf("cluster: no SLOMO model for %s", name)
}

// Tenant is one admitted NF instance: the arrival it came from plus the
// stream-unique ID lifecycle events are keyed on.
type Tenant struct {
	ID int
	placement.Arrival
}

// NIC is one fleet member's state: the tenants currently resident on it.
type NIC struct {
	ID      int
	Tenants []Tenant
}

// arrivals projects the resident set into the placement package's form.
func (n *NIC) arrivals() []placement.Arrival {
	out := make([]placement.Arrival, len(n.Tenants))
	for i, t := range n.Tenants {
		out[i] = t.Arrival
	}
	return out
}

// Fleet is the mutable cluster state a scheduler decides over.
type Fleet struct {
	NICs []*NIC
	// NFCores is the per-NF core allocation, NICCores the per-NIC total —
	// mirrored from the placement simulator so scheduler capacity checks
	// and feasibility checks agree.
	NFCores  int
	NICCores int
}

// NewFleet returns an empty fleet of n NICs sized to the environment's
// core budget.
func (e *Env) NewFleet(n int) *Fleet {
	f := &Fleet{NFCores: e.Sim.NFCores, NICCores: e.Sim.NICCores}
	for i := 0; i < n; i++ {
		f.NICs = append(f.NICs, &NIC{ID: i})
	}
	return f
}

// Fits reports whether NIC i has the core budget for one more NF.
func (f *Fleet) Fits(i int) bool {
	return (len(f.NICs[i].Tenants)+1)*f.NFCores <= f.NICCores
}

// FreeCores is NIC i's unallocated core count.
func (f *Fleet) FreeCores(i int) int {
	return f.NICCores - len(f.NICs[i].Tenants)*f.NFCores
}

// UsedCores is the fleet-wide allocated core count.
func (f *Fleet) UsedCores() int {
	used := 0
	for _, n := range f.NICs {
		used += len(n.Tenants) * f.NFCores
	}
	return used
}

// Tenants is the fleet-wide resident count.
func (f *Fleet) Tenants() int {
	total := 0
	for _, n := range f.NICs {
		total += len(n.Tenants)
	}
	return total
}

// place adds a tenant to NIC i.
func (f *Fleet) place(i int, t Tenant) {
	f.NICs[i].Tenants = append(f.NICs[i].Tenants, t)
}

// remove deletes the tenant by ID from NIC i, reporting the removed
// tenant and whether it was resident.
func (f *Fleet) remove(i, id int) (Tenant, bool) {
	n := f.NICs[i]
	for j, t := range n.Tenants {
		if t.ID == id {
			n.Tenants = append(n.Tenants[:j], n.Tenants[j+1:]...)
			return t, true
		}
	}
	return Tenant{}, false
}

// locate finds the NIC hosting tenant id, or -1: lifecycle events may
// outlive their tenant (an SLA eviction beats a scheduled departure).
func (f *Fleet) locate(id int) int {
	for i, n := range f.NICs {
		for _, t := range n.Tenants {
			if t.ID == id {
				return i
			}
		}
	}
	return -1
}

// Env binds the shared pieces one comparison run needs: a placement
// simulator (ground truth plus prediction-side feasibility, with its
// solo/co-run measurement caches) and the model source. Sharing one Env
// across policies evaluates every policy against identical cached
// measurements and loads each model exactly once.
type Env struct {
	Sim    *placement.Simulator
	Models ModelSource
}

// NewEnv builds an environment on a fresh testbed at the given NIC
// preset and seed.
func NewEnv(cfg nicsim.Config, seed uint64, models ModelSource) *Env {
	tb := testbed.New(cfg, seed)
	return &Env{
		Sim:    placement.NewSimulator(tb, map[string]*core.Model{}, map[string]*slomo.Model{}),
		Models: models,
	}
}

// ensureModels pulls the named NFs' models for the strategy from the
// model source into the simulator, once per name.
func (e *Env) ensureModels(strat placement.Strategy, names []string) error {
	for _, name := range names {
		switch strat {
		case placement.YalaAware:
			if _, ok := e.Sim.Yala[name]; ok {
				continue
			}
			m, err := e.Models.Yala(name)
			if err != nil {
				return err
			}
			e.Sim.Yala[name] = m
		case placement.SLOMOAware:
			if _, ok := e.Sim.SLOMO[name]; ok {
				continue
			}
			m, err := e.Models.SLOMO(name)
			if err != nil {
				return err
			}
			e.Sim.SLOMO[name] = m
		}
	}
	return nil
}

// Prewarm loads every model the named policies will consult and seeds
// the simulator's solo-measurement cache for the scenario's (NF,
// profile) pool. Decisions during the run then measure scheduling, not
// lazy model training or first-touch measurements — and every policy
// starts from identical cache state. The context cancels the warm-up
// between models and measurements.
func (e *Env) Prewarm(ctx context.Context, sc Scenario, policies []string) error {
	sc = sc.WithDefaults()
	for _, p := range policies {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch p {
		case "yala":
			if err := e.ensureModels(placement.YalaAware, sc.NFs); err != nil {
				return err
			}
		case "slomo":
			if err := e.ensureModels(placement.SLOMOAware, sc.NFs); err != nil {
				return err
			}
		}
	}
	for _, name := range sc.NFs {
		for _, prof := range sc.ProfilePool() {
			if err := ctx.Err(); err != nil {
				return err
			}
			a := placement.Arrival{Name: name, Profile: prof}
			m, err := e.Sim.TB.SoloNF(name, prof)
			if err != nil {
				return err
			}
			e.Sim.SeedSolo(a, m)
		}
	}
	return nil
}

// feasible is the prediction-guided admission check: load the models
// involved, then ask placement.Feasible whether adding a to the resident
// set keeps every SLA intact per the strategy's predictor.
func (e *Env) feasible(residents []placement.Arrival, a placement.Arrival, strat placement.Strategy) (bool, error) {
	names := make([]string, 0, len(residents)+1)
	names = append(names, a.Name)
	for _, r := range residents {
		names = append(names, r.Name)
	}
	if err := e.ensureModels(strat, names); err != nil {
		return false, err
	}
	return e.Sim.Feasible(residents, a, strat)
}
