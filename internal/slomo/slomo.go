// Package slomo implements the paper's state-of-the-art baseline
// (SLOMO, SIGCOMM'20): a gradient-boosting regressor over the
// competitors' hardware performance counters, trained at one fixed
// traffic profile, with sensitivity extrapolation to adapt to flow-count
// deviations (§7.1 of the Yala paper).
//
// SLOMO models only memory-subsystem contention — it has no notion of
// accelerator queues and no traffic features beyond the extrapolation —
// which is exactly the gap Yala's evaluation quantifies.
package slomo

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/nicsim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Model is a trained SLOMO predictor for one NF.
type Model struct {
	Name string
	// TrainProfile is the fixed traffic profile the model was trained at
	// (the paper's default: 16K flows, 1500B, 600 matches/MB).
	TrainProfile traffic.Profile
	// SoloAtTrain is the NF's solo throughput at the training profile.
	SoloAtTrain float64

	gbr *ml.GBR
}

// Config tunes SLOMO training.
type Config struct {
	// Samples is the number of mem-bench contention levels profiled.
	Samples int
	// GBR is the regressor configuration.
	GBR ml.GBRConfig
	// Seed drives contention sampling.
	Seed uint64
}

// DefaultConfig mirrors the training budget Yala's memory model gets, for
// a fair comparison (§7.3: "SLOMO enjoys the same amount of training data
// as Yala but concentrated on one fixed traffic profile").
func DefaultConfig() Config {
	return Config{Samples: 150, GBR: ml.DefaultGBRConfig(), Seed: 1}
}

// Train profiles the named NF at the fixed training profile under random
// mem-bench contention levels and fits the counter-based GBR.
func Train(tb *testbed.Testbed, name string, prof traffic.Profile, cfg Config) (*Model, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("slomo: non-positive sample budget")
	}
	w, err := tb.Workload(name, prof)
	if err != nil {
		return nil, err
	}
	solo, err := tb.RunSolo(w)
	if err != nil {
		return nil, err
	}

	rng := newRNG(cfg.Seed)
	b := testbed.MemContentionBounds
	var d ml.Dataset
	for i := 0; i < cfg.Samples; i++ {
		car := b.CARLo + (b.CARHi-b.CARLo)*rng()
		wss := b.WSSLo + (b.WSSHi-b.WSSLo)*rng()
		m, err := tb.WithMemBench(w, car, wss)
		if err != nil {
			return nil, err
		}
		d.Add(m.Competitors.Vector(), m.Throughput)
	}
	g, err := ml.FitGBR(d.X, d.Y, cfg.GBR)
	if err != nil {
		return nil, fmt.Errorf("slomo: %w", err)
	}
	return &Model{
		Name:         name,
		TrainProfile: prof,
		SoloAtTrain:  solo.Throughput,
		gbr:          g,
	}, nil
}

// Predict returns the throughput prediction for the training traffic
// profile given the competitors' aggregate counters.
func (m *Model) Predict(comp nicsim.Counters) float64 {
	y := m.gbr.Predict(comp.Vector())
	if y < 0 {
		return 0
	}
	return y
}

// PredictExtrapolated adapts the fixed-profile prediction to a different
// traffic profile via sensitivity extrapolation (Section 6 of the SLOMO
// paper, as described in §7.1): the sensitivity curve learned at the
// training profile is rescaled by the ratio of solo throughputs,
//
//	P_new = P_train · S_new / S_train .
//
// soloAtNew is the NF's solo throughput at the new profile, which SLOMO
// obtains from its own flow-count profiling. The rescaling preserves
// relative sensitivity, which holds only when the new profile's
// sensitivity curve overlaps the trained one — the failure mode Figure 7b
// demonstrates.
func (m *Model) PredictExtrapolated(comp nicsim.Counters, soloAtNew float64) float64 {
	p := m.Predict(comp)
	if m.SoloAtTrain <= 0 || soloAtNew <= 0 {
		return p
	}
	y := p * soloAtNew / m.SoloAtTrain
	if y < 0 {
		return 0
	}
	return y
}

// newRNG returns a tiny deterministic uniform generator. SLOMO's sampling
// stays independent of the sim package to keep this baseline self-
// contained.
func newRNG(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
}
