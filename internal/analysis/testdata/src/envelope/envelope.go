// Package fixture exercises the envelope analyzer: loaded by the
// golden test under a serving-package import path.
package fixture

import "net/http"

// plainError uses http.Error — flagged.
func plainError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError)
}

// rawConst writes a named error status constant — flagged.
func rawConst(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadGateway)
}

// rawLiteral writes a literal error status — flagged.
func rawLiteral(w http.ResponseWriter) {
	w.WriteHeader(503)
}

// success writes a non-error status — fine.
func success(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent)
}

// proxied forwards a computed status (an upstream's, the envelope
// writer's own) — fine.
func proxied(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}
