// Package fixture exercises the yalalint:ignore machinery: loaded by
// the golden test under a determinism-critical import path so the
// wallclock findings it suppresses are real.
package fixture

import "time"

// stamped is suppressed by the standalone directive above the line.
//
//yalalint:ignore wallclock fixture demonstrates a reviewed exception
func stamped() time.Time { return time.Now() }

// trailing is suppressed by the trailing-comment form.
func trailing() time.Time {
	return time.Now() //yalalint:ignore wallclock trailing form of the directive
}

// The next directive suppresses nothing — reported as stale.
//
//yalalint:ignore wallclock nothing below reads the clock
func clean() int { return 4 }

// The next directive names an analyzer that does not exist — reported.
//
//yalalint:ignore nosuchanalyzer the suite must reject typoed names
func alsoClean() int { return 5 }

// A directive without a reason is malformed — an unreviewed exception
// is not an exception.
//
//yalalint:ignore detmap
func noReason() int { return 6 }

// unsuppressed keeps one live finding so the fixture proves filtering
// is selective, not blanket.
func unsuppressed() time.Time { return time.Now() }
